//! The batch execution model: [`Program`], [`BatchCtx`], [`Control`].
//!
//! A thread's body is a resumable state machine. Each call to
//! [`Program::next_batch`] performs a *batch* of work — memory accesses,
//! compute, spawns, annotations — through the [`BatchCtx`] handle, and
//! returns a [`Control`] saying how the batch ends. Synchronization that
//! does not block (an uncontended lock, a semaphore post) lets the same
//! thread continue with its next batch without a context switch, exactly
//! like a fast user-level thread library.

use crate::observe::{ObsEvent, ObsLog};
use crate::points::AccessSpan;
use crate::sync::{BarrierId, CondId, MutexId, SemId, SyncTables};
use locality_core::{ModelError, SharingGraph, ThreadId};
use locality_sim::{AccessKind, Machine, VAddr};

/// How a batch ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Voluntarily yield the processor (stay ready).
    Yield,
    /// Sleep for the given number of simulated cycles.
    Sleep(u64),
    /// Acquire a mutex (blocks if held).
    Lock(MutexId),
    /// Release a mutex (never blocks; the thread continues).
    Unlock(MutexId),
    /// P() on a semaphore (blocks if the count is zero).
    SemWait(SemId),
    /// V() on a semaphore (never blocks).
    SemPost(SemId),
    /// Wait at a barrier (blocks unless this is the last arrival).
    BarrierWait(BarrierId),
    /// Atomically release the mutex and wait on the condition variable;
    /// on wake-up the mutex is re-acquired before the thread resumes.
    CondWait(CondId, MutexId),
    /// Wake one waiter of the condition variable (never blocks).
    CondSignal(CondId),
    /// Wake all waiters of the condition variable (never blocks).
    CondBroadcast(CondId),
    /// Wait for another thread to exit (continues immediately if it
    /// already has).
    Join(ThreadId),
    /// The thread is done.
    Exit,
}

impl Control {
    /// Whether this control can let the thread continue on the same
    /// processor without a context switch (subject to contention).
    pub fn may_continue(&self) -> bool {
        matches!(
            self,
            Control::Unlock(_)
                | Control::SemPost(_)
                | Control::CondSignal(_)
                | Control::CondBroadcast(_)
                | Control::Lock(_)
                | Control::SemWait(_)
                | Control::BarrierWait(_)
                | Control::Join(_)
        )
    }
}

/// A thread body: a resumable program executed batch by batch.
///
/// Implementations are plain state machines; see the crate-level example
/// and the `locality-workloads` crate for realistic ones.
pub trait Program {
    /// Performs the next batch of work and says how it ends.
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "program"
    }
}

/// A spawned child: its assigned id and its program, queued for the
/// engine to admit after the current batch.
pub(crate) struct PendingSpawn {
    pub tid: ThreadId,
    pub program: Box<dyn Program>,
}

impl std::fmt::Debug for PendingSpawn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingSpawn").field("tid", &self.tid).finish_non_exhaustive()
    }
}

/// The capability handle a [`Program`] uses during one batch.
///
/// All accesses run against the simulated machine immediately and their
/// cycle costs accumulate in [`batch_cycles`](Self::batch_cycles).
#[derive(Debug)]
pub struct BatchCtx<'a> {
    pub(crate) machine: &'a mut Machine,
    pub(crate) sync: &'a mut SyncTables,
    pub(crate) graph: &'a mut SharingGraph,
    pub(crate) cpu: usize,
    pub(crate) tid: ThreadId,
    pub(crate) cycles: u64,
    pub(crate) next_tid: &'a mut u64,
    pub(crate) spawns: Vec<PendingSpawn>,
    pub(crate) obs: Option<&'a mut ObsLog>,
    /// Exact per-batch access spans, collected only under controlled
    /// scheduling (the `ObsLog` coalesces spans across batches, so the
    /// model checker needs its own per-batch record).
    pub(crate) accesses: Option<Vec<AccessSpan>>,
}

impl<'a> BatchCtx<'a> {
    /// The calling thread's id (the paper's `at_self()`).
    pub fn self_id(&self) -> ThreadId {
        self.tid
    }

    /// The processor this batch runs on.
    pub fn cpu(&self) -> usize {
        self.cpu
    }

    /// Cycles consumed by this batch so far.
    pub fn batch_cycles(&self) -> u64 {
        self.cycles
    }

    /// Records a data-access span in the observation log, if enabled.
    /// Single accesses are 1-byte spans; range accesses record their
    /// covering span once (not one event per probe).
    fn note_access(&mut self, start: VAddr, bytes: u64, write: bool) {
        if let Some(log) = self.obs.as_deref_mut() {
            log.record(ObsEvent::Access { tid: self.tid, start, bytes, write });
        }
        if let Some(spans) = self.accesses.as_mut() {
            spans.push(AccessSpan { start, bytes, write });
        }
    }

    /// Loads one word at `va`.
    pub fn read(&mut self, va: VAddr) {
        self.note_access(va, 1, false);
        self.cycles += self.machine.access(self.cpu, va, AccessKind::Read);
    }

    /// Stores one word at `va`.
    pub fn write(&mut self, va: VAddr) {
        self.note_access(va, 1, true);
        self.cycles += self.machine.access(self.cpu, va, AccessKind::Write);
    }

    /// Fetches an instruction at `va` (through the L1-I).
    pub fn fetch(&mut self, va: VAddr) {
        self.cycles += self.machine.access(self.cpu, va, AccessKind::Fetch);
    }

    /// Performs a reference **run**: `count` accesses of `kind` at
    /// `base, base+stride, base+2·stride, …`, resolved by the machine in
    /// one batched walk ([`Machine::access_run`]) instead of `count`
    /// separate calls. Observable state — miss counts, PIC values,
    /// coherence traffic, cycle costs — is identical to the per-address
    /// loop; only the bookkeeping overhead is amortized.
    ///
    /// Read and write runs record one covering access span (like
    /// [`read_range`](Self::read_range)); fetches record none.
    pub fn run(&mut self, base: VAddr, stride: u64, count: u64, kind: AccessKind) {
        if count == 0 {
            return;
        }
        if !matches!(kind, AccessKind::Fetch) {
            let bytes = (count - 1).saturating_mul(stride) + 1;
            self.note_access(base, bytes, matches!(kind, AccessKind::Write));
        }
        self.cycles += self.machine.access_run(self.cpu, base, stride, count, kind);
    }

    /// Loads `count` addresses `base, base+stride, …` as one run.
    pub fn read_run(&mut self, base: VAddr, stride: u64, count: u64) {
        self.run(base, stride, count, AccessKind::Read);
    }

    /// Stores `count` addresses `base, base+stride, …` as one run.
    pub fn write_run(&mut self, base: VAddr, stride: u64, count: u64) {
        self.run(base, stride, count, AccessKind::Write);
    }

    /// Like [`read_run`](Self::read_run) but records one 1-byte span per
    /// element — a drop-in replacement for a loop of
    /// [`read`](Self::read) calls that leaves the observation log and
    /// model-checker access spans unchanged. (Machine accesses emit no
    /// observation events, so noting every span up front and then
    /// resolving the whole run produces the identical event sequence.)
    pub fn read_run_points(&mut self, base: VAddr, stride: u64, count: u64) {
        for i in 0..count {
            self.note_access(base.offset(i * stride), 1, false);
        }
        self.cycles += self.machine.access_run(self.cpu, base, stride, count, AccessKind::Read);
    }

    /// Per-element-span variant of [`write_run`](Self::write_run); see
    /// [`read_run_points`](Self::read_run_points).
    pub fn write_run_points(&mut self, base: VAddr, stride: u64, count: u64) {
        for i in 0..count {
            self.note_access(base.offset(i * stride), 1, true);
        }
        self.cycles += self.machine.access_run(self.cpu, base, stride, count, AccessKind::Write);
    }

    /// Loads every `stride`-th byte of `[start, start+bytes)`.
    pub fn read_range(&mut self, start: VAddr, bytes: u64, stride: u64) {
        self.note_access(start, bytes, false);
        let stride = stride.max(1);
        let count = bytes.div_ceil(stride);
        self.cycles += self.machine.access_run(self.cpu, start, stride, count, AccessKind::Read);
    }

    /// Stores every `stride`-th byte of `[start, start+bytes)`.
    pub fn write_range(&mut self, start: VAddr, bytes: u64, stride: u64) {
        self.note_access(start, bytes, true);
        let stride = stride.max(1);
        let count = bytes.div_ceil(stride);
        self.cycles += self.machine.access_run(self.cpu, start, stride, count, AccessKind::Write);
    }

    /// Executes `instructions` non-memory instructions (1 cycle each).
    pub fn compute(&mut self, instructions: u64) {
        self.cycles += instructions;
        self.machine.note_instructions(self.cpu, instructions);
    }

    /// Allocates simulated memory.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> VAddr {
        self.machine.alloc(bytes, align)
    }

    /// Frees simulated memory.
    pub fn free(&mut self, addr: VAddr, bytes: u64, align: u64) {
        self.machine.free(addr, bytes, align);
    }

    /// Registers `[start, start+bytes)` as part of the calling thread's
    /// state (footprint ground truth).
    pub fn register_region(&mut self, start: VAddr, bytes: u64) {
        self.machine.register_region(self.tid, start, bytes);
    }

    /// Registers a region as part of *another* thread's state (used right
    /// after spawning a child whose state the parent carved out).
    pub fn register_region_for(&mut self, tid: ThreadId, start: VAddr, bytes: u64) {
        self.machine.register_region(tid, start, bytes);
    }

    /// The `at_share(src, dst, q)` annotation: fraction `q` of `src`'s
    /// state is shared with `dst`. A hint — invalid coefficients are
    /// reported but never affect correctness.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for `q ∉ [0, 1]` or self-sharing; callers
    /// may ignore the error exactly because annotations are hints.
    pub fn at_share(&mut self, src: ThreadId, dst: ThreadId, q: f64) -> Result<(), ModelError> {
        let res = self.graph.set(src, dst, q);
        if let Some(log) = self.obs.as_deref_mut() {
            log.record(ObsEvent::AtShare { src, dst, q, accepted: res.is_ok() });
        }
        res
    }

    /// Spawns a child thread; it becomes ready when this batch ends.
    /// Returns the child's id (usable immediately in annotations and
    /// joins, like `at_create` in the paper).
    pub fn spawn(&mut self, program: Box<dyn Program>) -> ThreadId {
        let tid = ThreadId(*self.next_tid);
        *self.next_tid += 1;
        if let Some(log) = self.obs.as_deref_mut() {
            log.record(ObsEvent::Spawn { parent: Some(self.tid), child: tid });
        }
        self.spawns.push(PendingSpawn { tid, program });
        tid
    }

    /// Creates a mutex.
    pub fn create_mutex(&mut self) -> MutexId {
        self.sync.create_mutex()
    }

    /// Creates a counting semaphore.
    pub fn create_semaphore(&mut self, count: u64) -> SemId {
        self.sync.create_semaphore(count)
    }

    /// Creates a barrier for `parties` threads.
    pub fn create_barrier(&mut self, parties: usize) -> BarrierId {
        self.sync.create_barrier(parties)
    }

    /// Creates a condition variable.
    pub fn create_cond(&mut self) -> CondId {
        self.sync.create_cond()
    }

    /// Read-only view of the machine (e.g. for exact coefficients from the
    /// region table when building annotations).
    pub fn machine(&self) -> &Machine {
        self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn may_continue_classification() {
        assert!(Control::Unlock(MutexId(0)).may_continue());
        assert!(Control::SemPost(SemId(0)).may_continue());
        assert!(Control::Lock(MutexId(0)).may_continue());
        assert!(Control::Join(ThreadId(1)).may_continue());
        assert!(!Control::Yield.may_continue());
        assert!(!Control::Sleep(5).may_continue());
        assert!(!Control::Exit.may_continue());
    }
}
