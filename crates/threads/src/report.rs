//! End-of-run reports.

use locality_sim::stats::CpuStats;

/// Summary of a completed engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The scheduling policy used.
    pub policy: String,
    /// Number of processors.
    pub cpus: usize,
    /// Makespan: the largest processor clock at completion, in cycles.
    pub total_cycles: u64,
    /// Total E-cache misses across processors.
    pub total_l2_misses: u64,
    /// Total E-cache references across processors.
    pub total_l2_refs: u64,
    /// Total instructions executed.
    pub total_instructions: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Threads that ran to completion.
    pub threads_completed: u64,
    /// Threads killed by lifecycle fault injection (including failed
    /// spawns); zero on chaos-free runs.
    pub threads_aborted: u64,
    /// Threads stolen across processors by idle stealing.
    pub steals: u64,
    /// Floating-point operations spent on priority updates
    /// `(arithmetic, table lookups)`.
    pub priority_flops: (u64, u64),
    /// Scheduling intervals spent in degraded (counters-distrusted)
    /// mode; zero for FCFS and for clean-counter runs.
    pub degraded_intervals: u64,
    /// Counter intervals the sanitizer corrected (wraparound artifacts,
    /// outliers, inconsistent registers) or lost to read traps.
    pub corrected_intervals: u64,
    /// Per-processor statistics.
    pub per_cpu: Vec<CpuStats>,
}

impl RunReport {
    /// E-cache miss ratio (`misses / refs`), 0 if no references.
    pub fn miss_ratio(&self) -> f64 {
        if self.total_l2_refs == 0 {
            0.0
        } else {
            self.total_l2_misses as f64 / self.total_l2_refs as f64
        }
    }

    /// Misses per 1000 instructions.
    pub fn mpi(&self) -> f64 {
        if self.total_instructions == 0 {
            0.0
        } else {
            self.total_l2_misses as f64 * 1000.0 / self.total_instructions as f64
        }
    }

    /// Speedup of this run relative to a baseline run of the same work
    /// (`baseline.total_cycles / self.total_cycles`).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            baseline.total_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Fraction of the baseline's E-cache misses this run eliminated
    /// (negative if it took more).
    pub fn misses_eliminated_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.total_l2_misses == 0 {
            0.0
        } else {
            1.0 - self.total_l2_misses as f64 / baseline.total_l2_misses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, misses: u64) -> RunReport {
        RunReport {
            policy: "test".into(),
            cpus: 1,
            total_cycles: cycles,
            total_l2_misses: misses,
            total_l2_refs: misses * 2,
            total_instructions: 1_000_000,
            context_switches: 10,
            threads_completed: 5,
            threads_aborted: 0,
            steals: 0,
            priority_flops: (0, 0),
            degraded_intervals: 0,
            corrected_intervals: 0,
            per_cpu: vec![],
        }
    }

    #[test]
    fn ratios() {
        let r = report(1000, 50);
        assert!((r.miss_ratio() - 0.5).abs() < 1e-12);
        assert!((r.mpi() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn comparisons() {
        let fcfs = report(2000, 100);
        let lff = report(1000, 30);
        assert!((lff.speedup_over(&fcfs) - 2.0).abs() < 1e-12);
        assert!((lff.misses_eliminated_vs(&fcfs) - 0.7).abs() < 1e-12);
        // Worse than baseline shows as negative elimination.
        let bad = report(3000, 150);
        assert!(bad.misses_eliminated_vs(&fcfs) < 0.0);
    }

    #[test]
    fn degenerate_divisions() {
        let z = RunReport { total_l2_refs: 0, total_instructions: 0, ..report(0, 0) };
        assert_eq!(z.miss_ratio(), 0.0);
        assert_eq!(z.mpi(), 0.0);
        assert_eq!(z.speedup_over(&report(10, 1)), 0.0);
        assert_eq!(report(10, 5).misses_eliminated_vs(&z), 0.0);
    }
}
