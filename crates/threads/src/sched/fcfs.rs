//! The first-come first-served baseline: one global FIFO ready queue.

use super::Scheduler;
use locality_core::{SanitizedInterval, SharingGraph, ThreadId};
use std::collections::VecDeque;

/// FCFS scheduler: threads are dispatched in the order they became ready,
/// with no locality information of any kind (the paper's base case).
#[derive(Debug, Default)]
pub struct FcfsScheduler {
    queue: VecDeque<ThreadId>,
}

impl FcfsScheduler {
    /// Creates an empty FCFS scheduler.
    pub fn new() -> Self {
        FcfsScheduler::default()
    }
}

impl Scheduler for FcfsScheduler {
    fn on_spawn(&mut self, tid: ThreadId) {
        self.queue.push_back(tid);
    }

    fn on_ready(&mut self, tid: ThreadId) {
        debug_assert!(!self.queue.contains(&tid), "{tid} queued twice");
        self.queue.push_back(tid);
    }

    fn on_dispatch(&mut self, _cpu: usize, _tid: ThreadId) {}

    fn on_interval_end(
        &mut self,
        _cpu: usize,
        _tid: ThreadId,
        _interval: SanitizedInterval,
        _graph: &SharingGraph,
    ) {
    }

    fn pick(&mut self, _cpu: usize) -> Option<ThreadId> {
        self.queue.pop_front()
    }

    fn on_exit(&mut self, _tid: ThreadId) {}

    fn on_abort(&mut self, tid: ThreadId) {
        // An aborted thread may die while Ready; a clean exit never can.
        self.queue.retain(|&t| t != tid);
    }

    fn expected_footprint(&self, _cpu: usize, _tid: ThreadId) -> Option<f64> {
        None
    }

    fn ready_count(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "fcfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn fifo_order() {
        let mut s = FcfsScheduler::new();
        s.on_spawn(t(1));
        s.on_spawn(t(2));
        s.on_ready(t(3));
        assert_eq!(s.ready_count(), 3);
        assert_eq!(s.pick(0), Some(t(1)));
        assert_eq!(s.pick(1), Some(t(2)));
        assert_eq!(s.pick(0), Some(t(3)));
        assert_eq!(s.pick(0), None);
    }

    #[test]
    fn no_footprints_tracked() {
        let s = FcfsScheduler::new();
        assert_eq!(s.expected_footprint(0, t(1)), None);
        assert_eq!(s.priority_flops(), (0, 0));
        assert_eq!(s.steals(), 0);
        assert_eq!(s.name(), "fcfs");
    }

    #[test]
    fn abort_prunes_the_queue() {
        let mut s = FcfsScheduler::new();
        s.on_spawn(t(1));
        s.on_spawn(t(2));
        s.on_spawn(t(3));
        s.on_abort(t(2));
        assert_eq!(s.ready_count(), 2);
        assert_eq!(s.pick(0), Some(t(1)));
        assert_eq!(s.pick(0), Some(t(3)));
        assert_eq!(s.pick(0), None);
        // Aborting a thread that is not queued is a no-op.
        s.on_abort(t(7));
    }

    #[test]
    fn interval_end_is_noop() {
        let mut s = FcfsScheduler::new();
        let g = SharingGraph::new();
        s.on_ready(t(1));
        s.on_interval_end(0, t(2), SanitizedInterval::default(), &g);
        assert_eq!(s.ready_count(), 1);
    }
}
