//! The locality schedulers (LFF and CRT), paper §4–5.
//!
//! Structure per the paper's implementation notes:
//!
//! * one **binary heap per processor** keyed by the policy priority
//!   (equivalently: expected footprint for LFF, reload ratio for CRT);
//! * threads whose expected footprint on a processor drops below a
//!   **threshold** are removed from that heap to bound heap sizes; a
//!   thread resident in no heap waits in a single **global FIFO queue**;
//! * a processor with an empty heap consults the global queue; if that is
//!   empty too, it **steals the thread with the lowest priority** from a
//!   neighbour (it has the least to lose from migrating);
//! * at each context switch the estimator returns `O(out-degree)`
//!   priority updates (blocker + annotation dependents); ready dependents
//!   whose footprint just crossed the threshold are *promoted* from the
//!   global queue into the processor's heap.

use super::Scheduler;
use crate::heap::PrioHeap;
use locality_core::{
    CpuId, EstimatorConfig, LocalityEstimator, ModelParams, PolicyKind, SharingGraph, ThreadId,
};
use locality_sim::counters::PicDelta;
use std::collections::{HashMap, HashSet, VecDeque};

/// Tunables of a locality scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityConfig {
    /// LFF or CRT.
    pub policy: PolicyKind,
    /// Whether `at_share` annotations feed the model (off = the paper's
    /// counters-only ablation).
    pub use_annotations: bool,
    /// Heap-eviction threshold in expected lines.
    pub threshold_lines: f64,
    /// Sweep the processor's heap for under-threshold entries every this
    /// many context switches.
    pub sweep_interval: u64,
}

impl LocalityConfig {
    /// Default parameters for a policy: annotations on, 8-line threshold,
    /// sweep every 64 switches.
    pub fn new(policy: PolicyKind) -> Self {
        LocalityConfig { policy, use_annotations: true, threshold_lines: 8.0, sweep_interval: 64 }
    }
}

/// LFF/CRT scheduler over per-processor priority heaps.
#[derive(Debug)]
pub struct LocalityScheduler {
    config: LocalityConfig,
    est: LocalityEstimator,
    heaps: Vec<PrioHeap>,
    global: VecDeque<ThreadId>,
    in_global: HashSet<ThreadId>,
    /// For each ready thread, the bitmask of heaps containing it.
    heap_mask: HashMap<ThreadId, u64>,
    empty_graph: SharingGraph,
    interval_ends: u64,
    steals: u64,
}

impl LocalityScheduler {
    /// Creates the scheduler for a machine with `cpus` processors whose
    /// E-caches have `l2_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `l2_lines < 2` or `cpus == 0` or `cpus > 64`.
    pub fn new(config: LocalityConfig, l2_lines: usize, cpus: usize) -> Self {
        assert!(cpus > 0 && cpus <= 64, "cpus must be in 1..=64");
        let params = ModelParams::new(l2_lines).expect("valid cache size");
        let est = LocalityEstimator::new(EstimatorConfig::new(config.policy, params, cpus));
        LocalityScheduler {
            config,
            est,
            heaps: (0..cpus).map(|_| PrioHeap::new()).collect(),
            global: VecDeque::new(),
            in_global: HashSet::new(),
            heap_mask: HashMap::new(),
            empty_graph: SharingGraph::new(),
            interval_ends: 0,
            steals: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> LocalityConfig {
        self.config
    }

    /// The underlying estimator (inspection).
    pub fn estimator(&self) -> &LocalityEstimator {
        &self.est
    }

    /// Heap size on `cpu` (diagnostics / heap-bounding tests).
    pub fn heap_len(&self, cpu: usize) -> usize {
        self.heaps[cpu].len()
    }

    fn is_ready(&self, tid: ThreadId) -> bool {
        self.in_global.contains(&tid) || self.heap_mask.contains_key(&tid)
    }

    fn enqueue_ready(&mut self, tid: ThreadId) {
        debug_assert!(!self.is_ready(tid), "{tid} enqueued twice");
        let mut mask = 0u64;
        for cpu in 0..self.heaps.len() {
            if self.est.expected_footprint(CpuId(cpu), tid) >= self.config.threshold_lines {
                self.heaps[cpu].push(tid, self.est.priority(CpuId(cpu), tid));
                mask |= 1 << cpu;
            }
        }
        if mask == 0 {
            self.global.push_back(tid);
            self.in_global.insert(tid);
        } else {
            self.heap_mask.insert(tid, mask);
        }
    }

    /// Removes `tid` from every ready structure.
    fn remove_everywhere(&mut self, tid: ThreadId) {
        if let Some(mask) = self.heap_mask.remove(&tid) {
            for cpu in 0..self.heaps.len() {
                if mask & (1 << cpu) != 0 {
                    self.heaps[cpu].remove(tid);
                }
            }
        }
        if self.in_global.remove(&tid) {
            self.global.retain(|&x| x != tid);
        }
    }

    /// Demotes a ready thread out of `cpu`'s heap; if it is then in no
    /// heap, it joins the global queue.
    fn demote(&mut self, cpu: usize, tid: ThreadId) {
        let Some(mask) = self.heap_mask.get_mut(&tid) else { return };
        if *mask & (1 << cpu) == 0 {
            return;
        }
        self.heaps[cpu].remove(tid);
        *mask &= !(1 << cpu);
        if *mask == 0 {
            self.heap_mask.remove(&tid);
            self.global.push_back(tid);
            self.in_global.insert(tid);
        }
    }

    /// Promotes a ready thread into `cpu`'s heap with the given priority.
    fn promote(&mut self, cpu: usize, tid: ThreadId, prio: f64) {
        if !self.is_ready(tid) {
            return;
        }
        if self.in_global.remove(&tid) {
            self.global.retain(|&x| x != tid);
            self.heap_mask.insert(tid, 0);
        }
        let mask = self.heap_mask.entry(tid).or_insert(0);
        if *mask & (1 << cpu) == 0 {
            self.heaps[cpu].push(tid, prio);
            *mask |= 1 << cpu;
        } else {
            self.heaps[cpu].update(tid, prio);
        }
    }

    fn sweep(&mut self, cpu: usize) {
        let mut demote: Vec<ThreadId> = self.heaps[cpu]
            .iter()
            .filter(|&(tid, _)| {
                self.est.expected_footprint(CpuId(cpu), tid) < self.config.threshold_lines
            })
            .map(|(tid, _)| tid)
            .collect();
        demote.sort_unstable();
        for tid in demote {
            self.demote(cpu, tid);
        }
    }
}

impl Scheduler for LocalityScheduler {
    fn on_spawn(&mut self, tid: ThreadId) {
        self.enqueue_ready(tid);
    }

    fn on_ready(&mut self, tid: ThreadId) {
        self.enqueue_ready(tid);
    }

    fn on_dispatch(&mut self, cpu: usize, tid: ThreadId) {
        self.remove_everywhere(tid);
        self.est.on_dispatch(CpuId(cpu), tid);
    }

    fn on_interval_end(
        &mut self,
        cpu: usize,
        tid: ThreadId,
        delta: PicDelta,
        graph: &SharingGraph,
    ) {
        let graph = if self.config.use_annotations { graph } else { &self.empty_graph };
        let updates = self.est.on_interval_end(CpuId(cpu), tid, delta.misses, graph);
        for u in updates {
            if u.thread == tid {
                // The blocker is still Running from the scheduler's point
                // of view; the engine re-enqueues it (or not) afterwards.
                continue;
            }
            if !self.is_ready(u.thread) {
                continue;
            }
            if self.est.expected_footprint(CpuId(cpu), u.thread) >= self.config.threshold_lines {
                self.promote(cpu, u.thread, u.prio);
            } else {
                self.demote(cpu, u.thread);
            }
        }
        self.interval_ends += 1;
        if self.config.sweep_interval > 0 && self.interval_ends.is_multiple_of(self.config.sweep_interval)
        {
            self.sweep(cpu);
        }
    }

    fn pick(&mut self, cpu: usize) -> Option<ThreadId> {
        // Local heap first, lazily demoting entries that decayed below the
        // threshold since they were queued.
        while let Some((tid, _)) = self.heaps[cpu].pop_max() {
            if let Some(mask) = self.heap_mask.get_mut(&tid) {
                *mask &= !(1 << cpu);
            }
            if self.est.expected_footprint(CpuId(cpu), tid) < self.config.threshold_lines {
                // Decayed: push to wherever it still belongs.
                let mask = self.heap_mask.get(&tid).copied().unwrap_or(0);
                if mask == 0 {
                    self.heap_mask.remove(&tid);
                    self.global.push_back(tid);
                    self.in_global.insert(tid);
                }
                continue;
            }
            self.remove_everywhere(tid);
            return Some(tid);
        }
        // Global queue of footprint-less threads.
        if let Some(tid) = self.global.pop_front() {
            self.in_global.remove(&tid);
            self.heap_mask.remove(&tid);
            return Some(tid);
        }
        // Steal the lowest-priority thread from the fullest neighbour.
        let victim_cpu = (0..self.heaps.len())
            .filter(|&c| c != cpu && !self.heaps[c].is_empty())
            .max_by_key(|&c| (self.heaps[c].len(), usize::MAX - c))?;
        let (tid, _) = self.heaps[victim_cpu].min_entry()?;
        self.remove_everywhere(tid);
        self.steals += 1;
        Some(tid)
    }

    fn on_exit(&mut self, tid: ThreadId) {
        self.remove_everywhere(tid);
        self.est.remove_thread(tid);
    }

    fn expected_footprint(&self, cpu: usize, tid: ThreadId) -> Option<f64> {
        Some(self.est.expected_footprint(CpuId(cpu), tid))
    }

    fn ready_count(&self) -> usize {
        self.heap_mask.len() + self.global.len()
    }

    fn steals(&self) -> u64 {
        self.steals
    }

    fn priority_flops(&self) -> (u64, u64) {
        let c = self.est.schemes().flop_counter();
        (c.flops(), c.lookups())
    }

    fn name(&self) -> &'static str {
        match (self.config.policy, self.config.use_annotations) {
            (PolicyKind::Lff, true) => "lff",
            (PolicyKind::Crt, true) => "crt",
            (PolicyKind::Lff, false) => "lff-noann",
            (PolicyKind::Crt, false) => "crt-noann",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    fn sched(cpus: usize) -> LocalityScheduler {
        LocalityScheduler::new(LocalityConfig::new(PolicyKind::Lff), 1024, cpus)
    }

    /// Run a synthetic interval: dispatch tid on cpu, charge misses, end.
    fn run_interval(s: &mut LocalityScheduler, cpu: usize, tid: ThreadId, misses: u64) {
        s.on_dispatch(cpu, tid);
        s.on_interval_end(
            cpu,
            tid,
            PicDelta { refs: misses, hits: 0, misses },
            &SharingGraph::new(),
        );
    }

    #[test]
    fn cold_threads_go_to_global_queue() {
        let mut s = sched(2);
        s.on_spawn(t(1));
        s.on_spawn(t(2));
        assert_eq!(s.ready_count(), 2);
        assert_eq!(s.heap_len(0), 0);
        assert_eq!(s.pick(0), Some(t(1)), "FIFO from global when no footprints");
        assert_eq!(s.pick(0), Some(t(2)));
        assert_eq!(s.pick(0), None);
    }

    #[test]
    fn warm_thread_enters_heap_and_wins() {
        let mut s = sched(1);
        // t1 runs and builds footprint, then becomes ready again.
        s.on_spawn(t(1));
        assert_eq!(s.pick(0), Some(t(1)));
        run_interval(&mut s, 0, t(1), 400);
        s.on_ready(t(1));
        assert_eq!(s.heap_len(0), 1, "warm thread sits in the heap");
        // A cold thread arrives first in FIFO terms...
        s.on_spawn(t(2));
        // ...but the warm thread is dispatched first (heap beats global).
        assert_eq!(s.pick(0), Some(t(1)));
    }

    #[test]
    fn lff_picks_largest_footprint() {
        let mut s = sched(1);
        for (tid, misses) in [(t(1), 100u64), (t(2), 600), (t(3), 300)] {
            s.on_spawn(tid);
            s.remove_everywhere(tid);
            run_interval(&mut s, 0, tid, misses);
            s.on_ready(tid);
        }
        assert_eq!(s.pick(0), Some(t(2)));
        assert_eq!(s.pick(0), Some(t(3)));
        assert_eq!(s.pick(0), Some(t(1)));
    }

    #[test]
    fn threshold_demotion_to_global() {
        let mut s = LocalityScheduler::new(
            LocalityConfig { threshold_lines: 50.0, ..LocalityConfig::new(PolicyKind::Lff) },
            1024,
            1,
        );
        s.on_spawn(t(1));
        s.pick(0);
        run_interval(&mut s, 0, t(1), 100); // ~91 lines expected
        s.on_ready(t(1));
        assert_eq!(s.heap_len(0), 1);
        // Now another thread trashes the cache; t1 decays below 50 lines.
        s.on_spawn(t(2));
        s.pick(0); // t1 still beats t2? t1 in heap wins; force: pop order
        // Actually pick returned t1 (heap first). Re-run it with 0 misses
        // and requeue, then run t2 with many misses.
        run_interval(&mut s, 0, t(1), 0);
        s.on_ready(t(1));
        assert_eq!(s.pick(0), Some(t(1)));
        run_interval(&mut s, 0, t(1), 0);
        s.on_ready(t(1));
        // t2 is still queued; dispatch it and take a huge interval.
        // t1 is in the heap; pick must prefer t1 (warm). Remove it first.
        assert_eq!(s.pick(0), Some(t(1)));
        run_interval(&mut s, 0, t(1), 0);
        s.on_ready(t(1));
        // Directly dispatch t2 (simulating its turn) with many misses.
        s.remove_everywhere(t(2));
        run_interval(&mut s, 0, t(2), 5000);
        s.on_ready(t(2));
        // t1's footprint decayed to ~0.7 lines < 50: pick must demote it
        // and hand out t2 (warm), then t1 from the global queue.
        assert_eq!(s.pick(0), Some(t(2)));
        assert_eq!(s.pick(0), Some(t(1)), "demoted thread still runnable via global queue");
    }

    #[test]
    fn stealing_takes_lowest_priority_from_neighbour() {
        let mut s = sched(2);
        for (tid, misses) in [(t(1), 600u64), (t(2), 100)] {
            s.on_spawn(tid);
            s.remove_everywhere(tid);
            run_interval(&mut s, 0, tid, misses);
            s.on_ready(tid);
        }
        assert_eq!(s.heap_len(0), 2);
        // cpu1 has nothing: it steals the *lowest* priority thread (t2).
        assert_eq!(s.pick(1), Some(t(2)));
        assert_eq!(s.steals(), 1);
        // cpu0 keeps its hottest thread.
        assert_eq!(s.pick(0), Some(t(1)));
    }

    #[test]
    fn dependent_promotion_from_global() {
        let mut s = sched(1);
        let mut graph = SharingGraph::new();
        graph.set(t(1), t(2), 0.8).unwrap();
        // t2 is ready but cold: global queue.
        s.on_spawn(t(2));
        assert_eq!(s.heap_len(0), 0);
        // t1 runs and takes lots of misses; t2 (dependent) gains footprint.
        s.on_spawn(t(1));
        // pick returns t2 first (FIFO within global)... we want t1; force.
        s.remove_everywhere(t(1));
        s.on_dispatch(0, t(1));
        s.on_interval_end(0, t(1), PicDelta { refs: 2000, hits: 0, misses: 2000 }, &graph);
        // t2 must now sit in cpu0's heap (promoted).
        assert_eq!(s.heap_len(0), 1);
        assert_eq!(s.pick(0), Some(t(2)));
        assert_eq!(s.pick(0), None, "t2 must have left the global queue too");
    }

    #[test]
    fn no_annotations_mode_ignores_graph() {
        let mut s = LocalityScheduler::new(
            LocalityConfig { use_annotations: false, ..LocalityConfig::new(PolicyKind::Lff) },
            1024,
            1,
        );
        let mut graph = SharingGraph::new();
        graph.set(t(1), t(2), 1.0).unwrap();
        s.on_spawn(t(2));
        s.on_spawn(t(1));
        s.remove_everywhere(t(1));
        s.on_dispatch(0, t(1));
        s.on_interval_end(0, t(1), PicDelta { refs: 2000, hits: 0, misses: 2000 }, &graph);
        assert_eq!(s.heap_len(0), 0, "dependent must NOT be promoted");
        assert_eq!(s.name(), "lff-noann");
    }

    #[test]
    fn exit_cleans_everything() {
        let mut s = sched(2);
        s.on_spawn(t(1));
        s.pick(0);
        run_interval(&mut s, 0, t(1), 500);
        s.on_ready(t(1));
        s.on_exit(t(1));
        assert_eq!(s.ready_count(), 0);
        assert_eq!(s.pick(0), None);
        assert_eq!(s.expected_footprint(0, t(1)), Some(0.0));
    }

    #[test]
    fn sweep_bounds_heap_size() {
        let mut s = LocalityScheduler::new(
            LocalityConfig {
                threshold_lines: 100.0,
                sweep_interval: 1,
                ..LocalityConfig::new(PolicyKind::Lff)
            },
            1024,
            1,
        );
        // Ten warm-ish threads in the heap.
        for i in 0..10u64 {
            let tid = t(i);
            s.on_spawn(tid);
            s.remove_everywhere(tid);
            run_interval(&mut s, 0, tid, 200);
            s.on_ready(tid);
        }
        let before = s.heap_len(0);
        assert!(before > 0);
        // A long cache-trashing interval by one more thread decays all of
        // them; the sweep (interval=1) must demote the under-threshold
        // ones right away.
        s.on_spawn(t(99));
        s.remove_everywhere(t(99));
        run_interval(&mut s, 0, t(99), 20_000);
        assert_eq!(s.heap_len(0), 0, "sweep must evict all decayed entries");
        assert_eq!(s.ready_count(), 10, "demoted threads remain runnable");
    }

    #[test]
    fn crt_prefers_smallest_reload_ratio() {
        let mut s = LocalityScheduler::new(LocalityConfig::new(PolicyKind::Crt), 1024, 1);
        // t1 blocks with a large footprint, then t2 blocks; t2 just ran
        // (ratio 0) so it must be picked before t1 (which decayed).
        for (tid, misses) in [(t(1), 700u64), (t(2), 300)] {
            s.on_spawn(tid);
            s.remove_everywhere(tid);
            run_interval(&mut s, 0, tid, misses);
            s.on_ready(tid);
        }
        assert_eq!(s.pick(0), Some(t(2)), "most recently blocked has ratio 0");
    }
}
