//! The locality schedulers (LFF and CRT), paper §4–5.
//!
//! Structure per the paper's implementation notes:
//!
//! * one **priority heap per processor** keyed by the policy priority
//!   (equivalently: expected footprint for LFF, reload ratio for CRT);
//! * threads whose expected footprint on a processor drops below a
//!   **threshold** are removed from that heap to bound heap sizes; a
//!   thread resident in no heap waits in a single **global FIFO queue**;
//! * a processor with an empty heap consults the global queue; if that is
//!   empty too, it **steals the thread with the lowest priority** from a
//!   neighbour (it has the least to lose from migrating);
//! * at each context switch the estimator returns `O(out-degree)`
//!   priority updates (blocker + annotation dependents); ready dependents
//!   whose footprint just crossed the threshold are *promoted* from the
//!   global queue into the processor's heap.
//!
//! ## Data layout
//!
//! The scheduler interns every spawned thread into a dense slot via its
//! own [`ThreadSlots`] registry (released at exit, recycled with a fresh
//! generation). All per-thread dispatch state — ready flag, heap
//! membership bitmask, queue epochs — lives in one slot-indexed
//! `Vec<Option<SlotState>>`, and the per-processor heaps are
//! slot-indexed too, so everything past the single `ThreadId → slot`
//! lookup at each entry point is plain vector indexing. The global and
//! arrival FIFOs use **lazy deletion**: dequeuing from the middle just
//! flips the slot's flag (bumping an epoch on re-enqueue defeats ABA),
//! and stale entries are skipped at pop time or swept out when a queue
//! grows past twice its live population. Ties and orderings are always
//! [`ThreadId`]-based — never slot-based, which is recycling-dependent —
//! so the dispatch sequence is identical to an eagerly-maintained queue.
//!
//! ## Graceful degradation
//!
//! Counter-derived priorities are only as good as the counters. Each
//! sanitized interval carries a per-thread confidence score (see
//! [`locality_core::sanitizer`]); the scheduler folds those samples into
//! a machine-wide EWMA. When that estimate stays below
//! [`LocalityConfig::degrade_low`] for
//! [`LocalityConfig::hysteresis_intervals`] consecutive intervals, the
//! scheduler enters [`SchedMode::Degraded`]: priorities computed from
//! counter data are no longer trusted for dispatch. In that mode picks
//! use *annotations only* — the `at_share` dependents of the processor's
//! last blocker run first (they share state regardless of what the
//! counters claim) — and otherwise fall back to plain arrival-order FIFO,
//! making the policy FCFS-equivalent when annotations are off. The
//! estimator keeps consuming sanitized (bounded) intervals throughout,
//! so footprint state stays warm; once confidence holds above
//! [`LocalityConfig::recover_high`] for the same streak length the
//! scheduler returns to [`SchedMode::Normal`] automatically. The
//! two-threshold band plus streak requirement gives hysteresis against
//! flapping on noisy confidence samples.

use super::Scheduler;
use crate::heap::PrioHeap;
use crate::RuntimeError;
use locality_core::{
    CpuId, EstimatorConfig, FootprintEstimator, LocalityEstimator, ModelParams, PolicyKind,
    SanitizedInterval, SharingGraph, SlotId, ThreadId, ThreadSlots,
};
use locality_trace::{emit_with, TraceEvent};
use std::collections::VecDeque;

/// Smoothing factor of the machine-wide confidence EWMA.
const CONF_ALPHA: f64 = 0.25;

/// A lazily-deleted FIFO is swept when it grows past
/// `2 * ready_members + COMPACT_SLACK` entries.
const COMPACT_SLACK: usize = 32;

/// Whether the scheduler currently trusts counter-derived priorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Counters look sane: full LFF/CRT priority dispatch.
    Normal,
    /// Counters are distrusted: annotations-only preference, then
    /// arrival-order FIFO (FCFS-equivalent without annotations).
    Degraded,
}

/// Tunables of a locality scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityConfig {
    /// LFF or CRT.
    pub policy: PolicyKind,
    /// Whether `at_share` annotations feed the model (off = the paper's
    /// counters-only ablation).
    pub use_annotations: bool,
    /// Heap-eviction threshold in expected lines.
    pub threshold_lines: f64,
    /// Sweep the processor's heap for under-threshold entries every this
    /// many context switches.
    pub sweep_interval: u64,
    /// Enter [`SchedMode::Degraded`] when the confidence EWMA stays below
    /// this value.
    pub degrade_low: f64,
    /// Return to [`SchedMode::Normal`] when the confidence EWMA stays
    /// above this value (kept above `degrade_low` for hysteresis).
    pub recover_high: f64,
    /// Consecutive intervals the EWMA must sit beyond a threshold before
    /// the mode flips (streak hysteresis against flapping).
    pub hysteresis_intervals: u64,
}

impl LocalityConfig {
    /// Default parameters for a policy: annotations on, 8-line threshold,
    /// sweep every 64 switches, degrade below 0.5 / recover above 0.8
    /// confidence with a 4-interval streak requirement.
    pub fn new(policy: PolicyKind) -> Self {
        LocalityConfig {
            policy,
            use_annotations: true,
            threshold_lines: 8.0,
            sweep_interval: 64,
            degrade_low: 0.5,
            recover_high: 0.8,
            hysteresis_intervals: 4,
        }
    }
}

/// Per-slot dispatch state. A ready thread is in exactly one of two
/// places: at least one per-processor heap (`heap_mask != 0`) or the
/// global FIFO (`in_global`). The epochs validate lazily-deleted FIFO
/// entries: an entry is live only while the slot's flag is set *and* the
/// epoch recorded at enqueue time still matches (a re-enqueue bumps it).
#[derive(Debug, Clone, Copy)]
struct SlotState {
    slot: SlotId,
    ready: bool,
    in_global: bool,
    /// Bitmask of per-processor heaps holding this thread.
    heap_mask: u64,
    global_epoch: u64,
    arrival_epoch: u64,
}

/// LFF/CRT scheduler over per-processor priority heaps.
///
/// Generic over the footprint model: `E` defaults to the paper's
/// direct-mapped Markov closed forms ([`LocalityEstimator`]); any other
/// [`FootprintEstimator`] — e.g. the set-associative
/// [`PerSetEstimator`](locality_core::PerSetEstimator) — plugs in via
/// [`with_estimator`](LocalityScheduler::with_estimator) without touching
/// dispatch logic.
#[derive(Debug)]
pub struct LocalityScheduler<E: FootprintEstimator = LocalityEstimator> {
    config: LocalityConfig,
    est: E,
    /// Dense thread-slot registry (scheduler-internal interning).
    slots: ThreadSlots,
    /// Slot-indexed dispatch state (`None` = slot free or never used).
    states: Vec<Option<SlotState>>,
    heaps: Vec<PrioHeap>,
    /// Footprint-less ready threads, FIFO with lazy deletion:
    /// `(tid, slot index, global_epoch at enqueue)`.
    global: VecDeque<(ThreadId, u32, u64)>,
    /// All ready threads in arrival order (the degraded-mode FIFO), with
    /// the same lazy-deletion scheme keyed on `arrival_epoch`.
    arrival: VecDeque<(ThreadId, u32, u64)>,
    /// Per-cpu annotation dependents of the cpu's last blocker, by
    /// descending share weight (degraded-mode preference list).
    preferred: Vec<VecDeque<ThreadId>>,
    empty_graph: SharingGraph,
    mode: SchedMode,
    /// Monotonic enqueue counter feeding both FIFO epochs.
    epoch: u64,
    /// Number of ready threads (each is in heaps XOR the global FIFO).
    ready_members: usize,
    conf: f64,
    low_streak: u64,
    high_streak: u64,
    degraded_intervals: u64,
    interval_ends: u64,
    steals: u64,
}

impl LocalityScheduler {
    /// Creates the scheduler for a machine with `cpus` processors whose
    /// E-caches have `l2_lines` lines.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidMachine`] if `l2_lines < 2`,
    /// `cpus == 0`, or `cpus > 64` (the heap-membership bitmask is a
    /// `u64`). These used to be an `assert!` and an `.expect()`; a bad
    /// machine description now reaches the caller as a typed error.
    pub fn new(config: LocalityConfig, l2_lines: usize, cpus: usize) -> Result<Self, RuntimeError> {
        if cpus == 0 || cpus > 64 {
            return Err(RuntimeError::InvalidMachine {
                what: format!("cpus must be in 1..=64, got {cpus}"),
            });
        }
        let params = ModelParams::new(l2_lines)
            .map_err(|e| RuntimeError::InvalidMachine { what: e.to_string() })?;
        let est = LocalityEstimator::new(EstimatorConfig::new(config.policy, params, cpus));
        Self::with_estimator(config, est, cpus)
    }
}

impl<E: FootprintEstimator> LocalityScheduler<E> {
    /// Creates the scheduler around an explicit estimator (the seam for
    /// plugging in non-default footprint models). `est` must track the
    /// same `cpus` processors.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidMachine`] if `cpus == 0` or
    /// `cpus > 64` (the heap-membership bitmask is a `u64`).
    pub fn with_estimator(
        config: LocalityConfig,
        est: E,
        cpus: usize,
    ) -> Result<Self, RuntimeError> {
        if cpus == 0 || cpus > 64 {
            return Err(RuntimeError::InvalidMachine {
                what: format!("cpus must be in 1..=64, got {cpus}"),
            });
        }
        Ok(LocalityScheduler {
            config,
            est,
            slots: ThreadSlots::new(),
            states: Vec::new(),
            heaps: (0..cpus).map(|_| PrioHeap::new()).collect(),
            global: VecDeque::new(),
            arrival: VecDeque::new(),
            preferred: (0..cpus).map(|_| VecDeque::new()).collect(),
            empty_graph: SharingGraph::new(),
            mode: SchedMode::Normal,
            epoch: 0,
            ready_members: 0,
            conf: 1.0,
            low_streak: 0,
            high_streak: 0,
            degraded_intervals: 0,
            interval_ends: 0,
            steals: 0,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> LocalityConfig {
        self.config
    }

    /// The current dispatch mode.
    pub fn mode(&self) -> SchedMode {
        self.mode
    }

    /// The machine-wide counter-confidence EWMA in `[0, 1]`.
    pub fn confidence(&self) -> f64 {
        self.conf
    }

    /// The underlying estimator (inspection).
    pub fn estimator(&self) -> &E {
        &self.est
    }

    /// Heap size on `cpu` (diagnostics / heap-bounding tests).
    pub fn heap_len(&self, cpu: usize) -> usize {
        self.heaps[cpu].len()
    }

    /// Interns `tid` into a dense slot, resetting the slot's state on a
    /// fresh binding (a recycled slot inherits nothing).
    fn bind(&mut self, tid: ThreadId) -> SlotId {
        if let Some(slot) = self.slots.lookup(tid) {
            return slot;
        }
        let slot = self.slots.bind(tid);
        let i = slot.index();
        if i >= self.states.len() {
            self.states.resize(i + 1, None);
        }
        self.states[i] = Some(SlotState {
            slot,
            ready: false,
            in_global: false,
            heap_mask: 0,
            global_epoch: 0,
            arrival_epoch: 0,
        });
        slot
    }

    fn is_ready(&self, tid: ThreadId) -> bool {
        self.slots
            .lookup(tid)
            .and_then(|slot| self.states[slot.index()].as_ref())
            .is_some_and(|st| st.ready)
    }

    fn enqueue_ready(&mut self, tid: ThreadId, slot: SlotId) {
        debug_assert!(!self.is_ready(tid), "{tid} enqueued twice");
        let mut mask = 0u64;
        for cpu in 0..self.heaps.len() {
            if self.est.estimate(CpuId(cpu), tid) >= self.config.threshold_lines {
                self.heaps[cpu].push(tid, slot, self.est.priority(CpuId(cpu), tid));
                mask |= 1 << cpu;
            }
        }
        let i = slot.index();
        self.epoch += 1;
        let arrival_epoch = self.epoch;
        self.arrival.push_back((tid, i as u32, arrival_epoch));
        let in_global = mask == 0;
        let global_epoch = if in_global {
            self.epoch += 1;
            self.global.push_back((tid, i as u32, self.epoch));
            self.epoch
        } else {
            0
        };
        let st = self.states[i].as_mut().expect("bound slot has state");
        st.ready = true;
        st.heap_mask = mask;
        st.in_global = in_global;
        st.arrival_epoch = arrival_epoch;
        st.global_epoch = global_epoch;
        self.ready_members += 1;
        self.maybe_compact();
    }

    /// Removes `tid` from every ready structure.
    fn remove_everywhere(&mut self, tid: ThreadId) {
        if let Some(slot) = self.slots.lookup(tid) {
            self.remove_slot(slot);
        }
    }

    /// Removes a slot's thread from every ready structure: heaps
    /// eagerly, the FIFOs lazily (their entries die with the flags).
    fn remove_slot(&mut self, slot: SlotId) {
        let i = slot.index();
        let mask;
        {
            let Some(st) = self.states[i].as_mut() else { return };
            mask = st.heap_mask;
            st.heap_mask = 0;
            st.in_global = false;
            if st.ready {
                st.ready = false;
                self.ready_members -= 1;
            }
        }
        if mask != 0 {
            for cpu in 0..self.heaps.len() {
                if mask & (1 << cpu) != 0 {
                    self.heaps[cpu].remove(slot);
                }
            }
        }
    }

    /// Sweeps stale lazily-deleted entries out of a FIFO once it grows
    /// past twice its live population (amortized O(1) per enqueue; order
    /// of live entries is preserved).
    fn maybe_compact(&mut self) {
        let cap = 2 * self.ready_members + COMPACT_SLACK;
        if self.arrival.len() > cap {
            let states = &self.states;
            self.arrival.retain(|&(_, idx, ep)| {
                matches!(states.get(idx as usize), Some(Some(st)) if st.ready && st.arrival_epoch == ep)
            });
        }
        if self.global.len() > cap {
            let states = &self.states;
            self.global.retain(|&(_, idx, ep)| {
                matches!(states.get(idx as usize), Some(Some(st)) if st.in_global && st.global_epoch == ep)
            });
        }
    }

    /// Moves a slot's thread to the global FIFO (it is in no heap).
    fn push_global(&mut self, tid: ThreadId, i: usize) {
        self.epoch += 1;
        let ep = self.epoch;
        if let Some(st) = self.states[i].as_mut() {
            st.in_global = true;
            st.global_epoch = ep;
        }
        self.global.push_back((tid, i as u32, ep));
    }

    /// Demotes a ready thread out of `cpu`'s heap; if it is then in no
    /// heap, it joins the global queue.
    fn demote(&mut self, cpu: usize, tid: ThreadId, slot: SlotId) {
        let i = slot.index();
        let Some(st) = self.states[i].as_mut() else { return };
        if st.heap_mask & (1 << cpu) == 0 {
            return;
        }
        st.heap_mask &= !(1 << cpu);
        let now_heapless = st.heap_mask == 0;
        self.heaps[cpu].remove(slot);
        if now_heapless {
            self.push_global(tid, i);
            self.maybe_compact();
        }
    }

    /// Promotes a ready thread into `cpu`'s heap with the given priority.
    fn promote(&mut self, cpu: usize, tid: ThreadId, slot: SlotId, prio: f64) {
        let i = slot.index();
        let Some(st) = self.states[i].as_mut() else { return };
        if !st.ready {
            return;
        }
        // Leaving the global FIFO is lazy: the entry dies with the flag.
        st.in_global = false;
        if st.heap_mask & (1 << cpu) == 0 {
            st.heap_mask |= 1 << cpu;
            self.heaps[cpu].push(tid, slot, prio);
        } else {
            self.heaps[cpu].update(slot, prio);
        }
    }

    fn sweep(&mut self, cpu: usize) {
        let mut demote: Vec<(ThreadId, SlotId)> = self.heaps[cpu]
            .iter()
            .filter(|&(tid, _, _)| self.est.estimate(CpuId(cpu), tid) < self.config.threshold_lines)
            .map(|(tid, slot, _)| (tid, slot))
            .collect();
        demote.sort_unstable_by_key(|&(tid, _)| tid);
        for (tid, slot) in demote {
            self.demote(cpu, tid, slot);
        }
    }

    /// Folds one confidence sample into the EWMA and runs the streak
    /// hysteresis that flips the dispatch mode. `cpu` is the processor
    /// whose interval end carried the sample (trace attribution only).
    fn note_confidence(&mut self, cpu: usize, sample: f64) {
        let sample = if sample.is_finite() { sample.clamp(0.0, 1.0) } else { 0.0 };
        self.conf += CONF_ALPHA * (sample - self.conf);
        match self.mode {
            SchedMode::Normal => {
                self.high_streak = 0;
                if self.conf < self.config.degrade_low {
                    self.low_streak += 1;
                    if self.low_streak >= self.config.hysteresis_intervals {
                        self.mode = SchedMode::Degraded;
                        self.low_streak = 0;
                        emit_with(|| TraceEvent::ModeTransition {
                            cpu: cpu as u32,
                            degraded: true,
                            confidence: self.conf,
                        });
                    }
                } else {
                    self.low_streak = 0;
                }
            }
            SchedMode::Degraded => {
                self.low_streak = 0;
                if self.conf > self.config.recover_high {
                    self.high_streak += 1;
                    if self.high_streak >= self.config.hysteresis_intervals {
                        self.mode = SchedMode::Normal;
                        self.high_streak = 0;
                        for p in &mut self.preferred {
                            p.clear();
                        }
                        emit_with(|| TraceEvent::ModeTransition {
                            cpu: cpu as u32,
                            degraded: false,
                            confidence: self.conf,
                        });
                    }
                } else {
                    self.high_streak = 0;
                }
            }
        }
    }

    /// Degraded-mode pick: ready annotation dependents of `cpu`'s last
    /// blocker first, then plain arrival-order FIFO.
    fn pick_degraded(&mut self, cpu: usize) -> Option<ThreadId> {
        while let Some(tid) = self.preferred[cpu].pop_front() {
            if self.is_ready(tid) {
                self.remove_everywhere(tid);
                self.trace_dispatch(cpu, tid, f64::NAN, f64::NAN);
                return Some(tid);
            }
        }
        while let Some(&(tid, idx, ep)) = self.arrival.front() {
            let i = idx as usize;
            let live = matches!(&self.states[i], Some(st) if st.ready && st.arrival_epoch == ep);
            if live {
                let slot = self.states[i].as_ref().expect("live entry has state").slot;
                self.arrival.pop_front();
                self.remove_slot(slot);
                self.trace_dispatch(cpu, tid, f64::NAN, f64::NAN);
                return Some(tid);
            }
            // Lazily-deleted entry: discard and keep looking.
            self.arrival.pop_front();
        }
        None
    }

    /// Emits the dispatch trace point (compiled out without `trace`).
    fn trace_dispatch(&self, cpu: usize, tid: ThreadId, priority: f64, margin: f64) {
        emit_with(|| TraceEvent::Dispatch {
            cpu: cpu as u32,
            tid: tid.0,
            priority,
            margin,
            degraded: self.mode == SchedMode::Degraded,
        });
    }
}

impl<E: FootprintEstimator> Scheduler for LocalityScheduler<E> {
    fn on_spawn(&mut self, tid: ThreadId) {
        let slot = self.bind(tid);
        self.enqueue_ready(tid, slot);
    }

    fn on_ready(&mut self, tid: ThreadId) {
        let slot = self.bind(tid);
        self.enqueue_ready(tid, slot);
    }

    fn on_dispatch(&mut self, cpu: usize, tid: ThreadId) {
        self.remove_everywhere(tid);
        self.est.on_switch(CpuId(cpu), tid);
    }

    fn on_interval_end(
        &mut self,
        cpu: usize,
        tid: ThreadId,
        interval: SanitizedInterval,
        graph: &SharingGraph,
    ) {
        let model_graph = if self.config.use_annotations { graph } else { &self.empty_graph };
        // The estimator always consumes the (sanitized, bounded) interval,
        // even in degraded mode: keeping footprint state warm makes the
        // switch back to Normal seamless once confidence recovers.
        let updates = self.est.on_miss(CpuId(cpu), tid, interval.misses, model_graph);
        for u in updates {
            if u.thread == tid {
                // The blocker is still Running from the scheduler's point
                // of view; the engine re-enqueues it (or not) afterwards.
                continue;
            }
            let Some(slot) = self.slots.lookup(u.thread) else { continue };
            if !self.states[slot.index()].as_ref().is_some_and(|st| st.ready) {
                continue;
            }
            if self.est.estimate(CpuId(cpu), u.thread) >= self.config.threshold_lines {
                self.promote(cpu, u.thread, slot, u.prio);
            } else {
                self.demote(cpu, u.thread, slot);
            }
        }
        self.interval_ends += 1;
        if self.config.sweep_interval > 0
            && self.interval_ends.is_multiple_of(self.config.sweep_interval)
        {
            self.sweep(cpu);
        }
        self.note_confidence(cpu, interval.confidence);
        if self.mode == SchedMode::Degraded {
            self.degraded_intervals += 1;
            if self.config.use_annotations {
                // Cache the blocker's annotation dependents for the
                // annotations-only picks (pick() has no graph access).
                let mut deps: Vec<(ThreadId, f64)> = graph.dependents_of(tid).collect();
                // total_cmp keeps the order deterministic even for NaN
                // weights (partial_cmp would silently leave them wherever
                // the sort happened to visit them).
                deps.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                self.preferred[cpu] = deps.into_iter().map(|(dep, _)| dep).collect();
            }
        }
    }

    fn pick(&mut self, cpu: usize) -> Option<ThreadId> {
        if self.mode == SchedMode::Degraded {
            return self.pick_degraded(cpu);
        }
        // Local heap first, lazily demoting entries that decayed below the
        // threshold since they were queued.
        while let Some((tid, slot, prio)) = self.heaps[cpu].pop_max() {
            let i = slot.index();
            if let Some(st) = self.states[i].as_mut() {
                st.heap_mask &= !(1 << cpu);
            }
            if self.est.estimate(CpuId(cpu), tid) < self.config.threshold_lines {
                // Decayed: push to wherever it still belongs.
                let mask = self.states[i].as_ref().map_or(0, |st| st.heap_mask);
                if mask == 0 {
                    self.push_global(tid, i);
                }
                continue;
            }
            self.remove_slot(slot);
            // Margin over the runner-up still queued on this cpu (NaN
            // when the heap emptied).
            let margin = self.heaps[cpu].peek_max().map_or(f64::NAN, |(_, _, p)| prio - p);
            self.trace_dispatch(cpu, tid, prio, margin);
            return Some(tid);
        }
        // Global queue of footprint-less threads, skipping (and thereby
        // reclaiming) lazily-deleted entries.
        while let Some((tid, idx, ep)) = self.global.pop_front() {
            let i = idx as usize;
            let live = matches!(&self.states[i], Some(st) if st.in_global && st.global_epoch == ep);
            if !live {
                continue;
            }
            let slot = self.states[i].as_ref().expect("live entry has state").slot;
            self.remove_slot(slot);
            self.trace_dispatch(cpu, tid, self.est.priority(CpuId(cpu), tid), f64::NAN);
            return Some(tid);
        }
        // Steal the lowest-priority thread from the fullest neighbour.
        let victim_cpu = (0..self.heaps.len())
            .filter(|&c| c != cpu && !self.heaps[c].is_empty())
            .max_by_key(|&c| (self.heaps[c].len(), usize::MAX - c))?;
        let (tid, slot, prio) = self.heaps[victim_cpu].min_entry()?;
        self.remove_slot(slot);
        self.steals += 1;
        self.trace_dispatch(cpu, tid, prio, f64::NAN);
        Some(tid)
    }

    fn on_exit(&mut self, tid: ThreadId) {
        self.remove_everywhere(tid);
        self.est.retire(tid);
        if let Some(slot) = self.slots.release(tid) {
            self.states[slot.index()] = None;
        }
    }

    fn expected_footprint(&self, cpu: usize, tid: ThreadId) -> Option<f64> {
        Some(self.est.estimate(CpuId(cpu), tid))
    }

    fn ready_count(&self) -> usize {
        self.ready_members
    }

    fn steals(&self) -> u64 {
        self.steals
    }

    fn priority_flops(&self) -> (u64, u64) {
        self.est.flop_counts()
    }

    fn degraded_intervals(&self) -> u64 {
        self.degraded_intervals
    }

    fn is_degraded(&self) -> bool {
        self.mode == SchedMode::Degraded
    }

    fn name(&self) -> &'static str {
        match (self.config.policy, self.config.use_annotations) {
            (PolicyKind::Lff, true) => "lff",
            (PolicyKind::Crt, true) => "crt",
            (PolicyKind::Lff, false) => "lff-noann",
            (PolicyKind::Crt, false) => "crt-noann",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    fn sched(cpus: usize) -> LocalityScheduler {
        LocalityScheduler::new(LocalityConfig::new(PolicyKind::Lff), 1024, cpus).unwrap()
    }

    fn interval(misses: u64, confidence: f64) -> SanitizedInterval {
        SanitizedInterval { refs: misses, hits: 0, misses, confidence, corrected: false }
    }

    /// Run a synthetic interval: dispatch tid on cpu, charge misses, end.
    fn run_interval(s: &mut LocalityScheduler, cpu: usize, tid: ThreadId, misses: u64) {
        s.on_dispatch(cpu, tid);
        s.on_interval_end(cpu, tid, interval(misses, 1.0), &SharingGraph::new());
    }

    /// Like [`run_interval`] but with an explicit confidence sample.
    fn run_interval_conf(
        s: &mut LocalityScheduler,
        cpu: usize,
        tid: ThreadId,
        misses: u64,
        confidence: f64,
    ) {
        s.on_dispatch(cpu, tid);
        s.on_interval_end(cpu, tid, interval(misses, confidence), &SharingGraph::new());
    }

    #[test]
    fn cold_threads_go_to_global_queue() {
        let mut s = sched(2);
        s.on_spawn(t(1));
        s.on_spawn(t(2));
        assert_eq!(s.ready_count(), 2);
        assert_eq!(s.heap_len(0), 0);
        assert_eq!(s.pick(0), Some(t(1)), "FIFO from global when no footprints");
        assert_eq!(s.pick(0), Some(t(2)));
        assert_eq!(s.pick(0), None);
    }

    #[test]
    fn warm_thread_enters_heap_and_wins() {
        let mut s = sched(1);
        // t1 runs and builds footprint, then becomes ready again.
        s.on_spawn(t(1));
        assert_eq!(s.pick(0), Some(t(1)));
        run_interval(&mut s, 0, t(1), 400);
        s.on_ready(t(1));
        assert_eq!(s.heap_len(0), 1, "warm thread sits in the heap");
        // A cold thread arrives first in FIFO terms...
        s.on_spawn(t(2));
        // ...but the warm thread is dispatched first (heap beats global).
        assert_eq!(s.pick(0), Some(t(1)));
    }

    #[test]
    fn lff_picks_largest_footprint() {
        let mut s = sched(1);
        for (tid, misses) in [(t(1), 100u64), (t(2), 600), (t(3), 300)] {
            s.on_spawn(tid);
            s.remove_everywhere(tid);
            run_interval(&mut s, 0, tid, misses);
            s.on_ready(tid);
        }
        assert_eq!(s.pick(0), Some(t(2)));
        assert_eq!(s.pick(0), Some(t(3)));
        assert_eq!(s.pick(0), Some(t(1)));
    }

    #[test]
    fn threshold_demotion_to_global() {
        let mut s = LocalityScheduler::new(
            LocalityConfig { threshold_lines: 50.0, ..LocalityConfig::new(PolicyKind::Lff) },
            1024,
            1,
        )
        .unwrap();
        s.on_spawn(t(1));
        s.pick(0);
        run_interval(&mut s, 0, t(1), 100); // ~91 lines expected
        s.on_ready(t(1));
        assert_eq!(s.heap_len(0), 1);
        // Now another thread trashes the cache; t1 decays below 50 lines.
        s.on_spawn(t(2));
        s.pick(0); // t1 still beats t2? t1 in heap wins; force: pop order
                   // Actually pick returned t1 (heap first). Re-run it with 0 misses
                   // and requeue, then run t2 with many misses.
        run_interval(&mut s, 0, t(1), 0);
        s.on_ready(t(1));
        assert_eq!(s.pick(0), Some(t(1)));
        run_interval(&mut s, 0, t(1), 0);
        s.on_ready(t(1));
        // t2 is still queued; dispatch it and take a huge interval.
        // t1 is in the heap; pick must prefer t1 (warm). Remove it first.
        assert_eq!(s.pick(0), Some(t(1)));
        run_interval(&mut s, 0, t(1), 0);
        s.on_ready(t(1));
        // Directly dispatch t2 (simulating its turn) with many misses.
        s.remove_everywhere(t(2));
        run_interval(&mut s, 0, t(2), 5000);
        s.on_ready(t(2));
        // t1's footprint decayed to ~0.7 lines < 50: pick must demote it
        // and hand out t2 (warm), then t1 from the global queue.
        assert_eq!(s.pick(0), Some(t(2)));
        assert_eq!(s.pick(0), Some(t(1)), "demoted thread still runnable via global queue");
    }

    #[test]
    fn stealing_takes_lowest_priority_from_neighbour() {
        let mut s = sched(2);
        for (tid, misses) in [(t(1), 600u64), (t(2), 100)] {
            s.on_spawn(tid);
            s.remove_everywhere(tid);
            run_interval(&mut s, 0, tid, misses);
            s.on_ready(tid);
        }
        assert_eq!(s.heap_len(0), 2);
        // cpu1 has nothing: it steals the *lowest* priority thread (t2).
        assert_eq!(s.pick(1), Some(t(2)));
        assert_eq!(s.steals(), 1);
        // cpu0 keeps its hottest thread.
        assert_eq!(s.pick(0), Some(t(1)));
    }

    #[test]
    fn dependent_promotion_from_global() {
        let mut s = sched(1);
        let mut graph = SharingGraph::new();
        graph.set(t(1), t(2), 0.8).unwrap();
        // t2 is ready but cold: global queue.
        s.on_spawn(t(2));
        assert_eq!(s.heap_len(0), 0);
        // t1 runs and takes lots of misses; t2 (dependent) gains footprint.
        s.on_spawn(t(1));
        // pick returns t2 first (FIFO within global)... we want t1; force.
        s.remove_everywhere(t(1));
        s.on_dispatch(0, t(1));
        s.on_interval_end(0, t(1), interval(2000, 1.0), &graph);
        // t2 must now sit in cpu0's heap (promoted).
        assert_eq!(s.heap_len(0), 1);
        assert_eq!(s.pick(0), Some(t(2)));
        assert_eq!(s.pick(0), None, "t2 must have left the global queue too");
    }

    #[test]
    fn no_annotations_mode_ignores_graph() {
        let mut s = LocalityScheduler::new(
            LocalityConfig { use_annotations: false, ..LocalityConfig::new(PolicyKind::Lff) },
            1024,
            1,
        )
        .unwrap();
        let mut graph = SharingGraph::new();
        graph.set(t(1), t(2), 1.0).unwrap();
        s.on_spawn(t(2));
        s.on_spawn(t(1));
        s.remove_everywhere(t(1));
        s.on_dispatch(0, t(1));
        s.on_interval_end(0, t(1), interval(2000, 1.0), &graph);
        assert_eq!(s.heap_len(0), 0, "dependent must NOT be promoted");
        assert_eq!(s.name(), "lff-noann");
    }

    #[test]
    fn exit_cleans_everything() {
        let mut s = sched(2);
        s.on_spawn(t(1));
        s.pick(0);
        run_interval(&mut s, 0, t(1), 500);
        s.on_ready(t(1));
        s.on_exit(t(1));
        assert_eq!(s.ready_count(), 0);
        assert_eq!(s.pick(0), None);
        assert_eq!(s.expected_footprint(0, t(1)), Some(0.0));
    }

    #[test]
    fn sweep_bounds_heap_size() {
        let mut s = LocalityScheduler::new(
            LocalityConfig {
                threshold_lines: 100.0,
                sweep_interval: 1,
                ..LocalityConfig::new(PolicyKind::Lff)
            },
            1024,
            1,
        )
        .unwrap();
        // Ten warm-ish threads in the heap.
        for i in 0..10u64 {
            let tid = t(i);
            s.on_spawn(tid);
            s.remove_everywhere(tid);
            run_interval(&mut s, 0, tid, 200);
            s.on_ready(tid);
        }
        let before = s.heap_len(0);
        assert!(before > 0);
        // A long cache-trashing interval by one more thread decays all of
        // them; the sweep (interval=1) must demote the under-threshold
        // ones right away.
        s.on_spawn(t(99));
        s.remove_everywhere(t(99));
        run_interval(&mut s, 0, t(99), 20_000);
        assert_eq!(s.heap_len(0), 0, "sweep must evict all decayed entries");
        assert_eq!(s.ready_count(), 10, "demoted threads remain runnable");
    }

    #[test]
    fn crt_prefers_smallest_reload_ratio() {
        let mut s = LocalityScheduler::new(LocalityConfig::new(PolicyKind::Crt), 1024, 1).unwrap();
        // t1 blocks with a large footprint, then t2 blocks; t2 just ran
        // (ratio 0) so it must be picked before t1 (which decayed).
        for (tid, misses) in [(t(1), 700u64), (t(2), 300)] {
            s.on_spawn(tid);
            s.remove_everywhere(tid);
            run_interval(&mut s, 0, tid, misses);
            s.on_ready(tid);
        }
        assert_eq!(s.pick(0), Some(t(2)), "most recently blocked has ratio 0");
    }

    /// A scheduler with tight hysteresis for the degradation tests.
    fn degradable(use_annotations: bool, cpus: usize) -> LocalityScheduler {
        LocalityScheduler::new(
            LocalityConfig {
                use_annotations,
                hysteresis_intervals: 2,
                ..LocalityConfig::new(PolicyKind::Lff)
            },
            1024,
            cpus,
        )
        .unwrap()
    }

    /// Drive `tid` through low-confidence intervals until the scheduler
    /// degrades (bounded; panics if it never does).
    fn force_degrade(s: &mut LocalityScheduler, tid: ThreadId) {
        for _ in 0..32 {
            s.remove_everywhere(tid);
            run_interval_conf(s, 0, tid, 100, 0.0);
            s.on_ready(tid);
            if s.is_degraded() {
                return;
            }
        }
        panic!("scheduler never degraded");
    }

    #[test]
    fn sustained_low_confidence_degrades() {
        let mut s = degradable(true, 1);
        s.on_spawn(t(1));
        assert!(!s.is_degraded());
        assert_eq!(s.degraded_intervals(), 0);
        force_degrade(&mut s, t(1));
        assert_eq!(s.mode(), SchedMode::Degraded);
        assert!(s.degraded_intervals() > 0, "degraded intervals are counted");
        assert!(s.confidence() < 0.5);
    }

    #[test]
    fn one_bad_sample_does_not_degrade() {
        let mut s = degradable(true, 1);
        s.on_spawn(t(1));
        // Alternating good/bad samples: the EWMA dips but the streak
        // requirement keeps the mode stable.
        for i in 0..20 {
            s.remove_everywhere(t(1));
            run_interval_conf(&mut s, 0, t(1), 100, if i % 2 == 0 { 0.0 } else { 1.0 });
            s.on_ready(t(1));
        }
        assert!(!s.is_degraded(), "hysteresis must absorb alternating samples");
    }

    #[test]
    fn degraded_mode_is_arrival_fifo_without_annotations() {
        let mut s = degradable(false, 1);
        // t1 arrives first and stays cold; t2 arrives later and runs hot.
        s.on_spawn(t(1));
        s.on_spawn(t(2));
        force_degrade(&mut s, t(2));
        // t2 now has a large footprint (heap) but distrusted counters:
        // dispatch must follow arrival order, i.e. t1 first.
        assert_eq!(s.pick(0), Some(t(1)), "degraded pick ignores footprints");
        assert_eq!(s.pick(0), Some(t(2)));
        assert_eq!(s.pick(0), None);
    }

    #[test]
    fn degraded_mode_prefers_annotation_dependents() {
        let mut s = degradable(true, 1);
        let mut graph = SharingGraph::new();
        graph.set(t(1), t(3), 1.0).unwrap();
        // t2 arrives before t3; FIFO alone would pick t2 first.
        s.on_spawn(t(2));
        s.on_spawn(t(3));
        s.on_spawn(t(1));
        // Degrade while t1 blocks repeatedly, so cpu0's preference list
        // holds t1's dependents.
        for _ in 0..8 {
            s.remove_everywhere(t(1));
            s.on_dispatch(0, t(1));
            s.on_interval_end(0, t(1), interval(100, 0.0), &graph);
            s.on_ready(t(1));
            if s.is_degraded() {
                break;
            }
        }
        assert!(s.is_degraded());
        assert_eq!(s.pick(0), Some(t(3)), "dependent of the last blocker runs first");
        assert_eq!(s.pick(0), Some(t(2)), "then arrival order");
    }

    #[test]
    fn recovers_when_confidence_returns() {
        let mut s = degradable(true, 1);
        s.on_spawn(t(1));
        force_degrade(&mut s, t(1));
        let degraded_so_far = s.degraded_intervals();
        for _ in 0..32 {
            s.remove_everywhere(t(1));
            run_interval_conf(&mut s, 0, t(1), 100, 1.0);
            s.on_ready(t(1));
            if !s.is_degraded() {
                break;
            }
        }
        assert_eq!(s.mode(), SchedMode::Normal, "clean counters must restore Normal mode");
        assert!(s.degraded_intervals() >= degraded_so_far);
        // Normal dispatch again: the warm thread comes from the heap.
        let final_count = s.degraded_intervals();
        s.remove_everywhere(t(1));
        run_interval(&mut s, 0, t(1), 400);
        s.on_ready(t(1));
        s.on_spawn(t(2));
        assert_eq!(s.pick(0), Some(t(1)), "heap priority wins again after recovery");
        assert_eq!(s.degraded_intervals(), final_count, "counting stops after recovery");
    }

    #[test]
    fn slot_recycling_keeps_queues_clean() {
        // Spawn→exit→spawn reusing the slot: the recycled slot must not
        // inherit ready state or resurrect lazily-deleted FIFO entries.
        let mut s = sched(1);
        s.on_spawn(t(1));
        s.on_exit(t(1));
        assert_eq!(s.ready_count(), 0);
        s.on_spawn(t(2)); // reuses t1's slot
        assert_eq!(s.ready_count(), 1);
        assert_eq!(s.pick(0), Some(t(2)), "only the new binding is dispatchable");
        assert_eq!(s.pick(0), None, "the stale t1 entry must stay dead");
    }

    #[test]
    fn lazy_queues_stay_bounded() {
        // Repeated ready/dispatch cycles leave stale FIFO entries behind;
        // compaction must keep the queues proportional to the live set.
        let mut s = sched(1);
        s.on_spawn(t(1));
        assert_eq!(s.pick(0), Some(t(1)));
        for _ in 0..10_000 {
            s.on_ready(t(1));
            assert_eq!(s.pick(0), Some(t(1)));
        }
        assert!(
            s.arrival.len() <= 2 * s.ready_members + COMPACT_SLACK + 1,
            "arrival FIFO grew unboundedly: {}",
            s.arrival.len()
        );
        assert!(
            s.global.len() <= 2 * s.ready_members + COMPACT_SLACK + 1,
            "global FIFO grew unboundedly: {}",
            s.global.len()
        );
    }

    #[test]
    fn per_set_estimator_plugs_into_the_scheduler() {
        use locality_core::PerSetEstimator;
        let est = PerSetEstimator::new(8192, 8, 1).unwrap();
        let mut s = LocalityScheduler::with_estimator(LocalityConfig::new(PolicyKind::Lff), est, 1)
            .unwrap();
        // Same warm-up flow as the default estimator: the thread with the
        // larger per-set footprint wins LFF dispatch.
        for (tid, misses) in [(t(1), 100u64), (t(2), 600), (t(3), 300)] {
            s.on_spawn(tid);
            s.remove_everywhere(tid);
            s.on_dispatch(0, tid);
            s.on_interval_end(0, tid, interval(misses, 1.0), &SharingGraph::new());
            s.on_ready(tid);
        }
        assert_eq!(s.pick(0), Some(t(2)));
        assert_eq!(s.pick(0), Some(t(3)));
        assert_eq!(s.pick(0), Some(t(1)));
        // The per-set impl doesn't count flops (trait default).
        assert_eq!(s.priority_flops(), (0, 0));
        assert!(s.estimator().estimate(CpuId(0), t(2)) > 0.0);
        s.on_exit(t(2));
        assert_eq!(s.expected_footprint(0, t(2)), Some(0.0));
    }
}
