//! Scheduling policies.
//!
//! The engine talks to a [`Scheduler`] through a narrow event interface:
//! threads become ready, get dispatched, end scheduling intervals (with
//! the *sanitized* performance-counter deltas of the interval — see
//! [`locality_core::sanitizer`]), and exit. The scheduler owns the
//! run-queue structures and — for the locality policies — the
//! per-processor footprint estimator.

mod fcfs;
mod locality;

pub use fcfs::FcfsScheduler;
pub use locality::{LocalityConfig, LocalityScheduler, SchedMode};

use crate::points::SchedulePoint;
use locality_core::{PolicyKind, SanitizedInterval, SharingGraph, ThreadId};

/// The policy selector used when building an [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedPolicy {
    /// First-come first-served: one global FIFO queue (the paper's base
    /// case).
    Fcfs,
    /// Largest Footprint First with default locality parameters.
    Lff,
    /// Smallest cache-reload ratio with default locality parameters.
    Crt,
    /// LFF that ignores `at_share` annotations (the paper's §5 photo
    /// ablation: counters only).
    LffNoAnnotations,
    /// CRT that ignores `at_share` annotations.
    CrtNoAnnotations,
    /// A locality policy with explicit parameters.
    Custom(LocalityConfig),
}

impl SchedPolicy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Fcfs => "fcfs",
            SchedPolicy::Lff => "lff",
            SchedPolicy::Crt => "crt",
            SchedPolicy::LffNoAnnotations => "lff-noann",
            SchedPolicy::CrtNoAnnotations => "crt-noann",
            SchedPolicy::Custom(c) => {
                if c.use_annotations {
                    match c.policy {
                        PolicyKind::Lff => "lff-custom",
                        PolicyKind::Crt => "crt-custom",
                    }
                } else {
                    match c.policy {
                        PolicyKind::Lff => "lff-custom-noann",
                        PolicyKind::Crt => "crt-custom-noann",
                    }
                }
            }
        }
    }
}

/// The scheduler interface driven by the engine.
pub trait Scheduler {
    /// A new thread was created (it is ready).
    fn on_spawn(&mut self, tid: ThreadId);

    /// A blocked/sleeping thread became ready again.
    fn on_ready(&mut self, tid: ThreadId);

    /// `tid` was chosen to run on `cpu` (it left the ready structures).
    fn on_dispatch(&mut self, cpu: usize, tid: ThreadId);

    /// `tid`'s scheduling interval on `cpu` ended with the given
    /// sanitized counter deltas; apply the model updates (no-op for
    /// FCFS). A trapped read arrives as an all-zero interval with
    /// `corrected = true` and a reduced confidence.
    fn on_interval_end(
        &mut self,
        cpu: usize,
        tid: ThreadId,
        interval: SanitizedInterval,
        graph: &SharingGraph,
    );

    /// Picks the next thread for `cpu`, removing it from the ready
    /// structures.
    fn pick(&mut self, cpu: usize) -> Option<ThreadId>;

    /// `tid` exited.
    fn on_exit(&mut self, tid: ThreadId);

    /// A visible operation just executed under controlled scheduling
    /// ([`crate::EngineConfig::schedule_points`]) — the controlled-
    /// scheduling hook a model-checking scheduler uses to track sleep
    /// sets. Never called in normal runs; the default ignores it.
    fn on_schedule_point(&mut self, _point: &SchedulePoint) {}

    /// `tid` was killed by lifecycle fault injection. Unlike
    /// [`on_exit`](Self::on_exit) — where the engine guarantees the
    /// thread already left every ready structure — an aborted thread may
    /// still sit in a run queue, so implementations must prune it
    /// everywhere. The default forwards to `on_exit`, which is correct
    /// for schedulers whose exit path already removes the thread from
    /// all structures.
    fn on_abort(&mut self, tid: ThreadId) {
        self.on_exit(tid);
    }

    /// The expected footprint of `tid` on `cpu` in lines, if this policy
    /// tracks one (None for FCFS).
    fn expected_footprint(&self, cpu: usize, tid: ThreadId) -> Option<f64>;

    /// Number of ready threads currently queued.
    fn ready_count(&self) -> usize;

    /// Threads stolen from other processors' heaps so far.
    fn steals(&self) -> u64 {
        0
    }

    /// Total floating-point operations spent on priority updates
    /// (Table 3); zero for FCFS.
    fn priority_flops(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Intervals this scheduler spent in degraded (counters-distrusted)
    /// mode; zero for policies without a degraded mode.
    fn degraded_intervals(&self) -> u64 {
        0
    }

    /// Whether the scheduler is currently running degraded.
    fn is_degraded(&self) -> bool {
        false
    }

    /// The policy's report name.
    fn name(&self) -> &'static str;
}

/// Boxed schedulers forward to the inner policy, so the generic
/// [`crate::Engine<S>`] monomorphizes over concrete scheduler types
/// while `Engine<Box<dyn Scheduler>>` (the default) keeps the runtime
/// `--policy` selection working at the binary/CLI boundary.
///
/// Every method delegates explicitly — including the ones with default
/// bodies, which would otherwise silently drop the inner scheduler's
/// statistics.
impl Scheduler for Box<dyn Scheduler> {
    fn on_spawn(&mut self, tid: ThreadId) {
        (**self).on_spawn(tid);
    }

    fn on_ready(&mut self, tid: ThreadId) {
        (**self).on_ready(tid);
    }

    fn on_dispatch(&mut self, cpu: usize, tid: ThreadId) {
        (**self).on_dispatch(cpu, tid);
    }

    fn on_interval_end(
        &mut self,
        cpu: usize,
        tid: ThreadId,
        interval: SanitizedInterval,
        graph: &SharingGraph,
    ) {
        (**self).on_interval_end(cpu, tid, interval, graph);
    }

    fn pick(&mut self, cpu: usize) -> Option<ThreadId> {
        (**self).pick(cpu)
    }

    fn on_exit(&mut self, tid: ThreadId) {
        (**self).on_exit(tid);
    }

    fn on_schedule_point(&mut self, point: &SchedulePoint) {
        (**self).on_schedule_point(point);
    }

    fn on_abort(&mut self, tid: ThreadId) {
        (**self).on_abort(tid);
    }

    fn expected_footprint(&self, cpu: usize, tid: ThreadId) -> Option<f64> {
        (**self).expected_footprint(cpu, tid)
    }

    fn ready_count(&self) -> usize {
        (**self).ready_count()
    }

    fn steals(&self) -> u64 {
        (**self).steals()
    }

    fn priority_flops(&self) -> (u64, u64) {
        (**self).priority_flops()
    }

    fn degraded_intervals(&self) -> u64 {
        (**self).degraded_intervals()
    }

    fn is_degraded(&self) -> bool {
        (**self).is_degraded()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Builds the scheduler for a policy.
///
/// # Errors
///
/// Returns [`crate::RuntimeError::InvalidMachine`] when the machine
/// description cannot host a locality scheduler (see
/// [`LocalityScheduler::new`]).
pub(crate) fn build(
    policy: SchedPolicy,
    l2_lines: usize,
    cpus: usize,
) -> Result<Box<dyn Scheduler>, crate::RuntimeError> {
    Ok(match policy {
        SchedPolicy::Fcfs => Box::new(FcfsScheduler::new()),
        SchedPolicy::Lff => {
            Box::new(LocalityScheduler::new(LocalityConfig::new(PolicyKind::Lff), l2_lines, cpus)?)
        }
        SchedPolicy::Crt => {
            Box::new(LocalityScheduler::new(LocalityConfig::new(PolicyKind::Crt), l2_lines, cpus)?)
        }
        SchedPolicy::LffNoAnnotations => Box::new(LocalityScheduler::new(
            LocalityConfig { use_annotations: false, ..LocalityConfig::new(PolicyKind::Lff) },
            l2_lines,
            cpus,
        )?),
        SchedPolicy::CrtNoAnnotations => Box::new(LocalityScheduler::new(
            LocalityConfig { use_annotations: false, ..LocalityConfig::new(PolicyKind::Crt) },
            l2_lines,
            cpus,
        )?),
        SchedPolicy::Custom(config) => Box::new(LocalityScheduler::new(config, l2_lines, cpus)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names() {
        assert_eq!(SchedPolicy::Fcfs.name(), "fcfs");
        assert_eq!(SchedPolicy::Lff.name(), "lff");
        assert_eq!(SchedPolicy::Crt.name(), "crt");
        assert_eq!(SchedPolicy::LffNoAnnotations.name(), "lff-noann");
        assert_eq!(SchedPolicy::CrtNoAnnotations.name(), "crt-noann");
        let c = SchedPolicy::Custom(LocalityConfig::new(PolicyKind::Lff));
        assert_eq!(c.name(), "lff-custom");
    }

    #[test]
    fn build_produces_right_kinds() {
        assert_eq!(build(SchedPolicy::Fcfs, 8192, 2).unwrap().name(), "fcfs");
        assert_eq!(build(SchedPolicy::Lff, 8192, 2).unwrap().name(), "lff");
        assert_eq!(build(SchedPolicy::Crt, 8192, 2).unwrap().name(), "crt");
        assert_eq!(build(SchedPolicy::LffNoAnnotations, 8192, 2).unwrap().name(), "lff-noann");
    }

    #[test]
    fn build_rejects_bad_machines() {
        assert!(matches!(
            build(SchedPolicy::Lff, 1, 2),
            Err(crate::RuntimeError::InvalidMachine { .. })
        ));
        assert!(matches!(
            build(SchedPolicy::Crt, 8192, 0),
            Err(crate::RuntimeError::InvalidMachine { .. })
        ));
        assert!(matches!(
            build(SchedPolicy::Lff, 8192, 65),
            Err(crate::RuntimeError::InvalidMachine { .. })
        ));
        // FCFS has no model: any machine is fine.
        assert!(build(SchedPolicy::Fcfs, 1, 2).is_ok());
    }
}
