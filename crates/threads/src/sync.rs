//! Synchronization objects: mutexes, counting semaphores, barriers, and
//! condition variables — the full Active Threads menagerie (paper §5).
//!
//! The tables here only hold the *state* of each object (owner, count,
//! wait queues); the engine drives transitions and wakes threads. Wait
//! queues are FIFO, which keeps every run deterministic.

use crate::RuntimeError;
use locality_core::ThreadId;
use std::collections::VecDeque;

/// Identifier of a mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MutexId(pub usize);

/// Identifier of a counting semaphore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SemId(pub usize);

/// Identifier of a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierId(pub usize);

/// Identifier of a condition variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CondId(pub usize);

#[derive(Debug, Default)]
pub(crate) struct MutexState {
    pub owner: Option<ThreadId>,
    pub waiters: VecDeque<ThreadId>,
    /// Set when an owner died holding the mutex (lifecycle fault
    /// injection). The lock itself is reclaimed — handed to the next
    /// waiter or freed — but the flag records that the protected state
    /// may have been left inconsistent.
    pub poisoned: bool,
}

#[derive(Debug, Default)]
pub(crate) struct SemState {
    pub count: u64,
    pub waiters: VecDeque<ThreadId>,
}

#[derive(Debug)]
pub(crate) struct BarrierState {
    pub parties: usize,
    pub waiting: Vec<ThreadId>,
}

#[derive(Debug, Default)]
pub(crate) struct CondState {
    /// Waiters along with the mutex they must re-acquire on wake-up.
    pub waiters: VecDeque<(ThreadId, MutexId)>,
}

/// All synchronization objects of one engine.
#[derive(Debug, Default)]
pub struct SyncTables {
    pub(crate) mutexes: Vec<MutexState>,
    pub(crate) sems: Vec<SemState>,
    pub(crate) barriers: Vec<BarrierState>,
    pub(crate) conds: Vec<CondState>,
}

impl SyncTables {
    /// Creates an empty set of tables.
    pub fn new() -> Self {
        SyncTables::default()
    }

    /// Creates a mutex.
    pub fn create_mutex(&mut self) -> MutexId {
        self.mutexes.push(MutexState::default());
        MutexId(self.mutexes.len() - 1)
    }

    /// Creates a counting semaphore with the given initial count.
    pub fn create_semaphore(&mut self, count: u64) -> SemId {
        self.sems.push(SemState { count, waiters: VecDeque::new() });
        SemId(self.sems.len() - 1)
    }

    /// Creates a barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn create_barrier(&mut self, parties: usize) -> BarrierId {
        assert!(parties > 0, "a barrier needs at least one party");
        self.barriers.push(BarrierState { parties, waiting: Vec::new() });
        BarrierId(self.barriers.len() - 1)
    }

    /// Creates a condition variable.
    pub fn create_cond(&mut self) -> CondId {
        self.conds.push(CondState::default());
        CondId(self.conds.len() - 1)
    }

    pub(crate) fn mutex(&mut self, id: MutexId) -> Result<&mut MutexState, RuntimeError> {
        self.mutexes
            .get_mut(id.0)
            .ok_or_else(|| RuntimeError::UnknownSyncObject { what: format!("mutex {}", id.0) })
    }

    pub(crate) fn sem(&mut self, id: SemId) -> Result<&mut SemState, RuntimeError> {
        self.sems
            .get_mut(id.0)
            .ok_or_else(|| RuntimeError::UnknownSyncObject { what: format!("semaphore {}", id.0) })
    }

    pub(crate) fn barrier(&mut self, id: BarrierId) -> Result<&mut BarrierState, RuntimeError> {
        self.barriers
            .get_mut(id.0)
            .ok_or_else(|| RuntimeError::UnknownSyncObject { what: format!("barrier {}", id.0) })
    }

    pub(crate) fn cond(&mut self, id: CondId) -> Result<&mut CondState, RuntimeError> {
        self.conds
            .get_mut(id.0)
            .ok_or_else(|| RuntimeError::UnknownSyncObject { what: format!("condvar {}", id.0) })
    }

    /// Number of objects of each kind `(mutexes, sems, barriers, conds)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        (self.mutexes.len(), self.sems.len(), self.barriers.len(), self.conds.len())
    }

    /// Number of mutexes poisoned by an owner dying while holding them
    /// (zero on chaos-free runs).
    pub fn poisoned_mutexes(&self) -> usize {
        self.mutexes.iter().filter(|m| m.poisoned).count()
    }

    /// Whether `id` was poisoned by an owner death.
    pub fn is_poisoned(&self, id: MutexId) -> bool {
        self.mutexes.get(id.0).is_some_and(|m| m.poisoned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense() {
        let mut t = SyncTables::new();
        assert_eq!(t.create_mutex(), MutexId(0));
        assert_eq!(t.create_mutex(), MutexId(1));
        assert_eq!(t.create_semaphore(3), SemId(0));
        assert_eq!(t.create_barrier(4), BarrierId(0));
        assert_eq!(t.create_cond(), CondId(0));
        assert_eq!(t.counts(), (2, 1, 1, 1));
    }

    #[test]
    fn lookup_unknown_is_error() {
        let mut t = SyncTables::new();
        assert!(t.mutex(MutexId(0)).is_err());
        assert!(t.sem(SemId(5)).is_err());
        assert!(t.barrier(BarrierId(1)).is_err());
        assert!(t.cond(CondId(2)).is_err());
    }

    #[test]
    fn semaphore_initial_count() {
        let mut t = SyncTables::new();
        let s = t.create_semaphore(7);
        assert_eq!(t.sem(s).unwrap().count, 7);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_party_barrier_panics() {
        SyncTables::new().create_barrier(0);
    }
}
