//! Thread control blocks.

use crate::program::Program;
use locality_core::ThreadId;

/// The lifecycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable, waiting in a run queue.
    Ready,
    /// Currently executing on a processor.
    Running,
    /// Blocked on a synchronization object or a join.
    Blocked,
    /// Sleeping until a wake-up time.
    Sleeping,
    /// Finished.
    Exited,
    /// Killed by fault injection before it could exit cleanly (or
    /// stillborn on spawn failure); joinable like an exited thread.
    Aborted,
}

/// A thread control block.
pub struct Tcb {
    /// The thread's id.
    pub id: ThreadId,
    /// Lifecycle state.
    pub state: ThreadState,
    /// The body (taken out while a batch runs).
    pub program: Option<Box<dyn Program>>,
    /// Threads waiting to join this one.
    pub join_waiters: Vec<ThreadId>,
    /// Context switches this thread has gone through.
    pub switches: u64,
    /// Batches executed.
    pub batches: u64,
    /// Short program name (kept after exit for reports).
    pub name: String,
}

impl std::fmt::Debug for Tcb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tcb")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("name", &self.name)
            .field("switches", &self.switches)
            .field("batches", &self.batches)
            .finish_non_exhaustive()
    }
}

impl Tcb {
    /// Creates a ready TCB around a program.
    pub fn new(id: ThreadId, program: Box<dyn Program>) -> Self {
        let name = program.name().to_string();
        Tcb {
            id,
            state: ThreadState::Ready,
            program: Some(program),
            join_waiters: Vec::new(),
            switches: 0,
            batches: 0,
            name,
        }
    }

    /// Whether the thread has exited.
    pub fn exited(&self) -> bool {
        self.state == ThreadState::Exited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BatchCtx, Control};

    struct Nop;
    impl Program for Nop {
        fn next_batch(&mut self, _ctx: &mut BatchCtx<'_>) -> Control {
            Control::Exit
        }
        fn name(&self) -> &str {
            "nop"
        }
    }

    #[test]
    fn new_tcb_is_ready() {
        let tcb = Tcb::new(ThreadId(3), Box::new(Nop));
        assert_eq!(tcb.id, ThreadId(3));
        assert_eq!(tcb.state, ThreadState::Ready);
        assert_eq!(tcb.name, "nop");
        assert!(!tcb.exited());
        assert!(tcb.program.is_some());
        let dbg = format!("{tcb:?}");
        assert!(dbg.contains("nop"));
    }
}
