//! The trace event vocabulary.
//!
//! Payloads are plain scalars (`u64`/`u32`/`f64`/`bool`), not the typed
//! ids of the instrumented crates: `locality-trace` sits *below* every
//! other crate in the dependency graph so the model, simulator, and
//! runtime can all emit into one sink.

/// One instrumentation event. Each variant maps to a fixed point in the
/// paper's runtime sequence (see DESIGN.md §8 for the schema and how the
/// variants map onto the quantities of Figures 5–7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A thread was dispatched and its counter interval began
    /// (engine `dispatch`).
    IntervalBegin {
        /// Processor index.
        cpu: u32,
        /// Dispatched thread.
        tid: u64,
        /// Ready threads still queued after this dispatch.
        ready_depth: u32,
        /// The model's expected footprint of the thread in lines.
        expected_footprint: f64,
    },
    /// A thread's scheduling interval ended (engine `switch_out`, after
    /// the model updates were applied).
    IntervalEnd {
        /// Processor index.
        cpu: u32,
        /// The thread that ran.
        tid: u64,
        /// Why it left the processor (`"yield"`, `"blocked"`, ...).
        reason: &'static str,
        /// Sanitized E-cache references of the interval.
        refs: u64,
        /// Sanitized E-cache misses of the interval.
        misses: u64,
    },
    /// A raw performance-counter read (simulator `pic_take_interval`).
    PicRead {
        /// Processor index.
        cpu: u32,
        /// Raw reference count (0 when the read trapped).
        refs: u64,
        /// Raw hit count.
        hits: u64,
        /// Raw miss count.
        misses: u64,
        /// Whether the read trapped (the PICs kept accumulating).
        trapped: bool,
    },
    /// The sanitizer's verdict on one raw interval
    /// (`CounterSanitizer::sanitize` / `note_trap`).
    SanitizerVerdict {
        /// The thread whose interval was judged.
        tid: u64,
        /// Per-thread confidence after this interval, in `[0, 1]`.
        confidence: f64,
        /// Whether the raw values had to be corrected.
        corrected: bool,
    },
    /// The estimator finished one interval's `O(out-degree)` priority
    /// updates (`LocalityEstimator::on_interval_end`).
    PriorityUpdates {
        /// The blocking thread.
        tid: u64,
        /// Updates produced: the blocker plus its annotation dependents.
        fanout: u32,
    },
    /// A locality scheduler chose a thread (`LocalityScheduler::pick`).
    Dispatch {
        /// Processor index.
        cpu: u32,
        /// Chosen thread.
        tid: u64,
        /// The chosen thread's policy priority (log-space).
        priority: f64,
        /// Priority margin over the runner-up still in the heap (NaN
        /// when there was no runner-up or the pick bypassed the heap).
        margin: f64,
        /// Whether the pick was made in degraded (annotations-only) mode.
        degraded: bool,
    },
    /// The scheduler crossed a degradation hysteresis threshold
    /// (`SchedMode` flip).
    ModeTransition {
        /// Processor whose interval end triggered the flip.
        cpu: u32,
        /// `true` when entering degraded mode, `false` on recovery.
        degraded: bool,
        /// The machine-wide confidence EWMA at the flip.
        confidence: f64,
    },
    /// A Cache Miss Lookaside buffer was drained (simulator `cml_drain`).
    CmlDrain {
        /// Processor index.
        cpu: u32,
        /// Entries handed to the sharing inference.
        entries: u32,
    },
    /// Cumulative TLB counters on a processor, sampled at interval end
    /// alongside [`TraceEvent::IntervalEnd`]. Per-probe events would
    /// flood the ring at access granularity (the same reason
    /// `PredictionSample` lives behind a hook), so the simulator only
    /// aggregates and the engine snapshots the totals once per interval;
    /// consumers diff successive samples per cpu for interval deltas.
    TlbCounters {
        /// Processor index.
        cpu: u32,
        /// Cumulative TLB hits (page transitions with a held entry).
        hits: u64,
        /// Cumulative TLB misses (each charged a page-table walk).
        misses: u64,
        /// Cumulative cycles spent in page-table walks.
        walk_cycles: u64,
    },
    /// A thread was killed by lifecycle fault injection (engine
    /// `abort_thread`; the chaos layer), including stillborn spawns.
    ThreadAbort {
        /// The aborted thread.
        tid: u64,
    },
    /// Ground truth vs model at a context switch (engine `switch_out`,
    /// sampled after the model updates — the Figure 5/7 quantities).
    PredictionSample {
        /// Processor index.
        cpu: u32,
        /// The thread that ran.
        tid: u64,
        /// Simulator ground-truth resident lines.
        observed: f64,
        /// Model-predicted expected footprint in lines.
        predicted: f64,
    },
}

impl TraceEvent {
    /// Stable lowercase kind tag used by the exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::IntervalBegin { .. } => "interval-begin",
            TraceEvent::IntervalEnd { .. } => "interval-end",
            TraceEvent::PicRead { .. } => "pic-read",
            TraceEvent::SanitizerVerdict { .. } => "sanitizer-verdict",
            TraceEvent::PriorityUpdates { .. } => "priority-updates",
            TraceEvent::Dispatch { .. } => "dispatch",
            TraceEvent::ModeTransition { .. } => "mode-transition",
            TraceEvent::CmlDrain { .. } => "cml-drain",
            TraceEvent::TlbCounters { .. } => "tlb-counters",
            TraceEvent::ThreadAbort { .. } => "thread-abort",
            TraceEvent::PredictionSample { .. } => "prediction-sample",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique() {
        let kinds = [
            TraceEvent::IntervalBegin { cpu: 0, tid: 0, ready_depth: 0, expected_footprint: 0.0 }
                .kind(),
            TraceEvent::IntervalEnd { cpu: 0, tid: 0, reason: "yield", refs: 0, misses: 0 }.kind(),
            TraceEvent::PicRead { cpu: 0, refs: 0, hits: 0, misses: 0, trapped: false }.kind(),
            TraceEvent::SanitizerVerdict { tid: 0, confidence: 1.0, corrected: false }.kind(),
            TraceEvent::PriorityUpdates { tid: 0, fanout: 1 }.kind(),
            TraceEvent::Dispatch { cpu: 0, tid: 0, priority: 0.0, margin: 0.0, degraded: false }
                .kind(),
            TraceEvent::ModeTransition { cpu: 0, degraded: true, confidence: 0.2 }.kind(),
            TraceEvent::CmlDrain { cpu: 0, entries: 3 }.kind(),
            TraceEvent::TlbCounters { cpu: 0, hits: 0, misses: 0, walk_cycles: 0 }.kind(),
            TraceEvent::ThreadAbort { tid: 0 }.kind(),
            TraceEvent::PredictionSample { cpu: 0, tid: 0, observed: 0.0, predicted: 0.0 }.kind(),
        ];
        let mut sorted = kinds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), kinds.len());
    }
}
