//! Exporters: JSONL (one event object per line) and the Chrome
//! `trace_event` format (loads in Perfetto / `chrome://tracing`).
//!
//! Both outputs are pure functions of the recorded events — no wall
//! time, no environment — so two identically-seeded runs export
//! byte-identical files.

use crate::event::TraceEvent;
use crate::sink::Record;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Formats a float as a JSON value (`null` for NaN/infinities, which
/// JSON cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serializes records as JSON Lines: one self-contained object per
/// event, oldest first.
pub fn to_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        let head =
            format!("{{\"seq\":{},\"clock\":{},\"type\":\"{}\"", r.seq, r.clock, r.event.kind());
        let body = match r.event {
            TraceEvent::IntervalBegin { cpu, tid, ready_depth, expected_footprint } => format!(
                ",\"cpu\":{cpu},\"tid\":{tid},\"ready_depth\":{ready_depth},\"expected_footprint\":{}",
                json_f64(expected_footprint)
            ),
            TraceEvent::IntervalEnd { cpu, tid, reason, refs, misses } => format!(
                ",\"cpu\":{cpu},\"tid\":{tid},\"reason\":\"{reason}\",\"refs\":{refs},\"misses\":{misses}"
            ),
            TraceEvent::PicRead { cpu, refs, hits, misses, trapped } => format!(
                ",\"cpu\":{cpu},\"refs\":{refs},\"hits\":{hits},\"misses\":{misses},\"trapped\":{trapped}"
            ),
            TraceEvent::SanitizerVerdict { tid, confidence, corrected } => format!(
                ",\"tid\":{tid},\"confidence\":{},\"corrected\":{corrected}",
                json_f64(confidence)
            ),
            TraceEvent::PriorityUpdates { tid, fanout } => {
                format!(",\"tid\":{tid},\"fanout\":{fanout}")
            }
            TraceEvent::Dispatch { cpu, tid, priority, margin, degraded } => format!(
                ",\"cpu\":{cpu},\"tid\":{tid},\"priority\":{},\"margin\":{},\"degraded\":{degraded}",
                json_f64(priority),
                json_f64(margin)
            ),
            TraceEvent::ModeTransition { cpu, degraded, confidence } => format!(
                ",\"cpu\":{cpu},\"degraded\":{degraded},\"confidence\":{}",
                json_f64(confidence)
            ),
            TraceEvent::CmlDrain { cpu, entries } => format!(",\"cpu\":{cpu},\"entries\":{entries}"),
            TraceEvent::TlbCounters { cpu, hits, misses, walk_cycles } => {
                format!(",\"cpu\":{cpu},\"hits\":{hits},\"misses\":{misses},\"walk_cycles\":{walk_cycles}")
            }
            TraceEvent::ThreadAbort { tid } => format!(",\"tid\":{tid}"),
            TraceEvent::PredictionSample { cpu, tid, observed, predicted } => format!(
                ",\"cpu\":{cpu},\"tid\":{tid},\"observed\":{},\"predicted\":{}",
                json_f64(observed),
                json_f64(predicted)
            ),
        };
        let _ = writeln!(out, "{head}{body}}}");
    }
    out
}

/// Process id of the per-CPU tracks in the Chrome export.
const PID_CPUS: u32 = 1;
/// Process id of the per-thread tracks.
const PID_THREADS: u32 = 2;

/// Serializes records as a Chrome `trace_event` JSON document with one
/// track per CPU (`pid` 1) and one per thread (`pid` 2). Scheduling
/// intervals become complete (`"X"`) slices on both tracks; ready-queue
/// depth and the confidence EWMA become counter (`"C"`) series. The
/// timestamp unit is the simulated cycle.
pub fn to_chrome(records: &[Record]) -> String {
    let mut events: Vec<String> = Vec::new();

    // Name the tracks first so viewers group them sensibly.
    let mut cpus: BTreeSet<u32> = BTreeSet::new();
    let mut tids: BTreeSet<u64> = BTreeSet::new();
    for r in records {
        match r.event {
            TraceEvent::IntervalBegin { cpu, tid, .. }
            | TraceEvent::IntervalEnd { cpu, tid, .. } => {
                cpus.insert(cpu);
                tids.insert(tid);
            }
            _ => {}
        }
    }
    for (pid, name) in [(PID_CPUS, "cpus"), (PID_THREADS, "threads")] {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }
    for &cpu in &cpus {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{PID_CPUS},\"tid\":{cpu},\"name\":\"thread_name\",\"args\":{{\"name\":\"cpu{cpu}\"}}}}"
        ));
    }
    for &tid in &tids {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{PID_THREADS},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"t{tid}\"}}}}"
        ));
    }

    // Pair IntervalBegin/IntervalEnd into complete slices per CPU.
    fn slice(events: &mut Vec<String>, cpu: u32, tid: u64, ts: u64, end: u64, misses: Option<u64>) {
        let dur = end.saturating_sub(ts);
        let args = match misses {
            Some(m) => format!(",\"args\":{{\"misses\":{m}}}"),
            None => String::new(),
        };
        for (pid, track) in [(PID_CPUS, u64::from(cpu)), (PID_THREADS, tid)] {
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{track},\"name\":\"t{tid}\",\"ts\":{ts},\"dur\":{dur}{args}}}"
            ));
        }
    }
    let max_cpu = cpus.iter().next_back().map_or(0, |&c| c as usize);
    let mut open: Vec<Option<(u64, u64)>> = vec![None; max_cpu + 1];
    let mut last_clock = 0u64;
    for r in records {
        last_clock = last_clock.max(r.clock);
        match r.event {
            TraceEvent::IntervalBegin { cpu, tid, ready_depth, .. } => {
                open[cpu as usize] = Some((tid, r.clock));
                events.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{PID_CPUS},\"tid\":{cpu},\"name\":\"ready\",\"ts\":{},\"args\":{{\"depth\":{ready_depth}}}}}",
                    r.clock
                ));
            }
            TraceEvent::IntervalEnd { cpu, tid, misses, .. } => {
                // Tolerate an end without a begin (the begin may have
                // been overwritten by ring wrap-around).
                let ts = match open[cpu as usize].take() {
                    Some((open_tid, ts)) if open_tid == tid => ts,
                    _ => r.clock,
                };
                slice(&mut events, cpu, tid, ts, r.clock, Some(misses));
            }
            TraceEvent::ModeTransition { cpu, confidence, .. } => {
                events.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{PID_CPUS},\"tid\":{cpu},\"name\":\"confidence\",\"ts\":{},\"args\":{{\"ewma\":{}}}}}",
                    r.clock,
                    json_f64(confidence)
                ));
            }
            _ => {}
        }
    }
    // Close any interval still running when collection stopped.
    for (cpu, slot) in open.iter().enumerate() {
        if let Some((tid, ts)) = *slot {
            slice(&mut events, cpu as u32, tid, ts, last_clock.max(ts), None);
        }
    }

    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, clock: u64, event: TraceEvent) -> Record {
        Record { seq, clock, event }
    }

    fn sample_records() -> Vec<Record> {
        vec![
            rec(
                1,
                100,
                TraceEvent::IntervalBegin {
                    cpu: 0,
                    tid: 3,
                    ready_depth: 2,
                    expected_footprint: 12.5,
                },
            ),
            rec(
                2,
                250,
                TraceEvent::IntervalEnd { cpu: 0, tid: 3, reason: "yield", refs: 40, misses: 7 },
            ),
            rec(3, 250, TraceEvent::SanitizerVerdict { tid: 3, confidence: 0.9, corrected: false }),
            rec(4, 250, TraceEvent::PriorityUpdates { tid: 3, fanout: 1 }),
            rec(
                5,
                260,
                TraceEvent::Dispatch {
                    cpu: 0,
                    tid: 3,
                    priority: -0.5,
                    margin: f64::NAN,
                    degraded: false,
                },
            ),
        ]
    }

    #[test]
    fn jsonl_one_line_per_event_and_nan_is_null() {
        let text = to_jsonl(&sample_records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("{\"seq\":1,\"clock\":100,\"type\":\"interval-begin\""));
        assert!(lines[1].contains("\"misses\":7"));
        assert!(lines[4].contains("\"margin\":null"), "NaN must become null: {}", lines[4]);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn chrome_pairs_intervals_and_names_tracks() {
        let text = to_chrome(&sample_records());
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"name\":\"cpu0\""));
        assert!(text.contains("\"name\":\"t3\""));
        // The paired slice: ts 100, dur 150, on both the cpu and the
        // thread track.
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 2);
        assert!(text.contains("\"ts\":100,\"dur\":150"));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.trim_end().ends_with("]}"));
    }

    #[test]
    fn chrome_closes_dangling_intervals() {
        let recs = vec![rec(
            1,
            50,
            TraceEvent::IntervalBegin { cpu: 1, tid: 9, ready_depth: 0, expected_footprint: 0.0 },
        )];
        let text = to_chrome(&recs);
        assert!(text.contains("\"ph\":\"X\""), "unclosed interval must still render");
        assert!(text.contains("\"ts\":50,\"dur\":0"));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_records();
        assert_eq!(to_jsonl(&a), to_jsonl(&a));
        assert_eq!(to_chrome(&a), to_chrome(&a));
    }
}
