//! # locality-trace
//!
//! The observability layer of the thread-locality reproduction: a
//! fixed-capacity ring-buffer event sink fed by emission points inside
//! the model ([`locality-core`]), the simulator ([`locality-sim`]), and
//! the runtime ([`active-threads`]), plus aggregated metrics and
//! exporters to JSONL and the Chrome `trace_event` format (opens in
//! Perfetto / `chrome://tracing`).
//!
//! ## Zero cost when disabled
//!
//! Every hot-path emission goes through [`emit_with`], which takes a
//! closure producing the event. The `trace` cargo feature is resolved in
//! *this* crate, so with the feature off (the default) [`emit_with`] is
//! an empty `#[inline(always)]` function: the closure is never
//! evaluated, no thread-local is touched, and the instrumented crates
//! compile to exactly their un-instrumented code. [`ENABLED`] tells
//! callers at runtime which build they are in.
//!
//! ## No allocation on the hot path
//!
//! The sink pre-allocates its full capacity at [`install`] time and
//! overwrites the oldest record once full (counting the overwritten
//! events as dropped), so recording an event never allocates. Aggregated
//! metrics ([`metrics::TraceAggregate`]) are folded in **online** at
//! record time, so they stay exact even after the ring wraps.
//!
//! ## Determinism
//!
//! Events are stamped with a sequence number and the simulated clock
//! (set by the engine via [`set_clock`]), never wall time, so two runs
//! of the same seeded workload emit byte-identical exports.
//!
//! [`locality-core`]: ../locality_core/index.html
//! [`locality-sim`]: ../locality_sim/index.html
//! [`active-threads`]: ../active_threads/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod sink;

pub use event::TraceEvent;
pub use metrics::{Histogram, TraceAggregate, TraceSummary, HIST_BUCKETS};
pub use sink::{emit_with, install, set_clock, take, Record, TraceSink, ENABLED};
