//! Online aggregation of trace events into the metrics the paper's
//! evaluation cares about: interval miss counts, footprint-prediction
//! error, ready-queue depth, and per-dispatch update fan-out.
//!
//! Aggregation happens at record time (see
//! [`TraceSink::record`](crate::sink::TraceSink::record)), so the
//! metrics stay exact even when the ring buffer wraps and individual
//! event records are dropped.

use crate::event::TraceEvent;
use std::collections::BTreeMap;

/// Number of power-of-two histogram buckets.
pub const HIST_BUCKETS: usize = 32;

/// Observed footprints below this many lines are excluded from the
/// *relative* prediction-error average — the same cut
/// `MonitorTrace::mean_rel_error` applies, so the two agree exactly on
/// the same run.
const REL_ERR_MIN_OBSERVED: f64 = 64.0;

/// A power-of-two histogram: bucket 0 counts zeros, bucket `i >= 1`
/// counts values in `[2^(i-1), 2^i)`, with the last bucket absorbing
/// everything larger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS] }
    }
}

impl Histogram {
    /// The bucket index a value falls into.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (usize::try_from(u64::BITS - v.leading_zeros()).unwrap_or(HIST_BUCKETS))
                .min(HIST_BUCKETS - 1)
        }
    }

    /// The inclusive lower bound of bucket `i`.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Counts a value.
    pub fn note(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Total values counted.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// The running aggregate a [`TraceSink`](crate::sink::TraceSink) keeps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceAggregate {
    /// Total events seen.
    pub events: u64,
    /// Scheduling intervals completed ([`TraceEvent::IntervalEnd`]).
    pub intervals: u64,
    /// Degradation-mode flips ([`TraceEvent::ModeTransition`]).
    pub mode_transitions: u64,
    /// Threads killed by lifecycle fault injection
    /// ([`TraceEvent::ThreadAbort`]).
    pub thread_aborts: u64,
    /// Histogram of per-interval sanitized miss counts.
    pub miss_hist: Histogram,
    /// Histogram of ready-queue depth at each dispatch.
    pub depth_hist: Histogram,
    /// Histogram of per-interval priority-update fan-out.
    pub fanout_hist: Histogram,
    /// Histogram of footprint-prediction absolute error in lines
    /// (rounded up to whole lines).
    pub abs_err_hist: Histogram,
    abs_err_sum: f64,
    abs_err_n: u64,
    /// Per-thread `(signed relative error sum, samples)` over prediction
    /// samples with at least [`REL_ERR_MIN_OBSERVED`] observed lines.
    rel_err: BTreeMap<u64, (f64, u64)>,
}

impl TraceAggregate {
    /// Folds one event in.
    pub fn note(&mut self, event: &TraceEvent) {
        self.events += 1;
        match *event {
            TraceEvent::IntervalBegin { ready_depth, .. } => {
                self.depth_hist.note(u64::from(ready_depth));
            }
            TraceEvent::IntervalEnd { misses, .. } => {
                self.intervals += 1;
                self.miss_hist.note(misses);
            }
            TraceEvent::PriorityUpdates { fanout, .. } => {
                self.fanout_hist.note(u64::from(fanout));
            }
            TraceEvent::ModeTransition { .. } => self.mode_transitions += 1,
            TraceEvent::ThreadAbort { .. } => self.thread_aborts += 1,
            TraceEvent::PredictionSample { tid, observed, predicted, .. } => {
                let abs = (predicted - observed).abs();
                self.abs_err_hist.note(abs.ceil() as u64);
                self.abs_err_sum += abs;
                self.abs_err_n += 1;
                if observed >= REL_ERR_MIN_OBSERVED {
                    let e = self.rel_err.entry(tid).or_insert((0.0, 0));
                    e.0 += (predicted - observed) / observed;
                    e.1 += 1;
                }
            }
            TraceEvent::PicRead { .. }
            | TraceEvent::SanitizerVerdict { .. }
            | TraceEvent::Dispatch { .. }
            | TraceEvent::TlbCounters { .. }
            | TraceEvent::CmlDrain { .. } => {}
        }
    }

    /// Mean absolute footprint-prediction error in lines (0 without
    /// samples).
    pub fn mean_abs_error(&self) -> f64 {
        if self.abs_err_n == 0 {
            0.0
        } else {
            self.abs_err_sum / self.abs_err_n as f64
        }
    }

    /// Mean signed relative prediction error for `tid` (0 without
    /// samples) — the Figure 5/7 deviation statistic.
    pub fn mean_rel_error(&self, tid: u64) -> f64 {
        match self.rel_err.get(&tid) {
            Some(&(sum, n)) if n > 0 => sum / n as f64,
            _ => 0.0,
        }
    }

    /// Relative-error samples recorded for `tid`.
    pub fn rel_samples(&self, tid: u64) -> u64 {
        self.rel_err.get(&tid).map_or(0, |&(_, n)| n)
    }

    /// Flattens into a [`TraceSummary`]. `monitored` picks the thread
    /// whose relative error is reported; `None` pools every thread.
    pub fn summary(&self, monitored: Option<u64>, dropped: u64) -> TraceSummary {
        let (rel_sum, rel_n) = match monitored {
            Some(tid) => self.rel_err.get(&tid).copied().unwrap_or((0.0, 0)),
            None => self.rel_err.values().fold((0.0, 0), |(s, n), &(es, en)| (s + es, n + en)),
        };
        TraceSummary {
            events: self.events,
            intervals: self.intervals,
            dropped,
            mode_transitions: self.mode_transitions,
            miss_hist: *self.miss_hist.buckets(),
            depth_hist: *self.depth_hist.buckets(),
            fanout_hist: *self.fanout_hist.buckets(),
            abs_err_hist: *self.abs_err_hist.buckets(),
            abs_err_mean: self.mean_abs_error(),
            abs_err_samples: self.abs_err_n,
            rel_err_mean: if rel_n > 0 { rel_sum / rel_n as f64 } else { 0.0 },
            rel_err_samples: rel_n,
        }
    }
}

/// A flat, plain-data snapshot of a run's aggregated trace metrics —
/// what the `repro trace` binary caches and writes to CSV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Total events emitted.
    pub events: u64,
    /// Scheduling intervals completed.
    pub intervals: u64,
    /// Event records lost to ring wrap-around (metrics are unaffected).
    pub dropped: u64,
    /// Degradation-mode flips.
    pub mode_transitions: u64,
    /// Per-interval miss-count histogram (power-of-two buckets).
    pub miss_hist: [u64; HIST_BUCKETS],
    /// Ready-queue-depth-at-dispatch histogram.
    pub depth_hist: [u64; HIST_BUCKETS],
    /// Priority-update fan-out histogram.
    pub fanout_hist: [u64; HIST_BUCKETS],
    /// Footprint-prediction absolute-error histogram (lines).
    pub abs_err_hist: [u64; HIST_BUCKETS],
    /// Mean absolute prediction error in lines.
    pub abs_err_mean: f64,
    /// Prediction samples behind `abs_err_mean`.
    pub abs_err_samples: u64,
    /// Mean signed relative prediction error of the monitored thread
    /// (observed ≥ 64 lines), as in Figure 5's summary.
    pub rel_err_mean: f64,
    /// Samples behind `rel_err_mean`.
    pub rel_err_samples: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(3), 4);
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.note(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[2], 2);
    }

    #[test]
    fn aggregate_tracks_each_metric() {
        let mut a = TraceAggregate::default();
        a.note(&TraceEvent::IntervalBegin {
            cpu: 0,
            tid: 1,
            ready_depth: 3,
            expected_footprint: 10.0,
        });
        a.note(&TraceEvent::IntervalEnd { cpu: 0, tid: 1, reason: "yield", refs: 9, misses: 5 });
        a.note(&TraceEvent::PriorityUpdates { tid: 1, fanout: 2 });
        a.note(&TraceEvent::ModeTransition { cpu: 0, degraded: true, confidence: 0.3 });
        assert_eq!(a.events, 4);
        assert_eq!(a.intervals, 1);
        assert_eq!(a.mode_transitions, 1);
        assert_eq!(a.miss_hist.buckets()[Histogram::bucket_of(5)], 1);
        assert_eq!(a.depth_hist.buckets()[Histogram::bucket_of(3)], 1);
        assert_eq!(a.fanout_hist.buckets()[Histogram::bucket_of(2)], 1);
    }

    #[test]
    fn prediction_error_matches_monitor_statistic() {
        let mut a = TraceAggregate::default();
        // Two qualifying samples at +10% error, one under the 64-line
        // observation cut that must be excluded from the relative mean.
        for (obs, pred) in [(100.0, 110.0), (200.0, 220.0), (10.0, 99.0)] {
            a.note(&TraceEvent::PredictionSample {
                cpu: 0,
                tid: 7,
                observed: obs,
                predicted: pred,
            });
        }
        assert!((a.mean_rel_error(7) - 0.1).abs() < 1e-12);
        assert_eq!(a.rel_samples(7), 2);
        assert_eq!(a.mean_rel_error(8), 0.0);
        // The absolute mean sees all three samples: (10 + 20 + 89) / 3.
        assert!((a.mean_abs_error() - 119.0 / 3.0).abs() < 1e-12);
        let s = a.summary(Some(7), 4);
        assert_eq!(s.dropped, 4);
        assert_eq!(s.rel_err_samples, 2);
        assert!((s.rel_err_mean - 0.1).abs() < 1e-12);
        let pooled = a.summary(None, 0);
        assert_eq!(pooled.rel_err_samples, 2);
    }
}
