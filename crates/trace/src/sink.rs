//! The ring-buffer event sink and its thread-local installation.
//!
//! One sink per OS thread: the engine, scheduler, estimator, sanitizer,
//! and simulator of a run all execute on the run's thread, so a
//! thread-local needs no locking and parallel experiment runners get one
//! private sink per worker. [`install`] before a run, [`take`] after.

use crate::event::TraceEvent;
use crate::metrics::TraceAggregate;
use std::cell::RefCell;

/// Whether this build carries the hot-path emission points (the `trace`
/// cargo feature). When `false`, [`emit_with`] and [`set_clock`] are
/// empty inline functions and an installed sink records nothing.
pub const ENABLED: bool = cfg!(feature = "trace");

/// Default ring capacity: large enough that a fig5-scale monitored run
/// keeps every event, small enough to stay cheap (~24 MB of records).
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// One recorded event, stamped with its global sequence number and the
/// simulated clock that was current when it was emitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// 1-based emission index (monotone even across drops).
    pub seq: u64,
    /// Simulated cycles of the emitting processor (see [`set_clock`]).
    pub clock: u64,
    /// The event.
    pub event: TraceEvent,
}

/// A fixed-capacity overwrite-oldest ring buffer of [`Record`]s with
/// online metric aggregation.
#[derive(Debug)]
pub struct TraceSink {
    ring: Vec<Record>,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    capacity: usize,
    seq: u64,
    clock: u64,
    dropped: u64,
    agg: TraceAggregate,
}

impl TraceSink {
    /// Creates a sink, pre-allocating the whole ring so recording never
    /// allocates. A zero capacity is clamped to 1.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceSink {
            ring: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            seq: 0,
            clock: 0,
            dropped: 0,
            agg: TraceAggregate::default(),
        }
    }

    /// Sets the clock stamped onto subsequent records.
    pub fn set_clock(&mut self, clock: u64) {
        self.clock = clock;
    }

    /// Records an event, overwriting the oldest record when full. The
    /// aggregate metrics always see the event, wrapped or not.
    pub fn record(&mut self, event: TraceEvent) {
        self.seq += 1;
        self.agg.note(&event);
        let rec = Record { seq: self.seq, clock: self.clock, event };
        if self.ring.len() < self.capacity {
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events emitted so far (including any overwritten ones).
    pub fn events_emitted(&self) -> u64 {
        self.seq
    }

    /// Records still held in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// The online metric aggregate.
    pub fn aggregate(&self) -> &TraceAggregate {
        &self.agg
    }

    /// The aggregate folded into a flat summary (see
    /// [`TraceAggregate::summary`]); `monitored` selects the thread whose
    /// relative prediction error is reported.
    pub fn summary(&self, monitored: Option<u64>) -> crate::metrics::TraceSummary {
        self.agg.summary(monitored, self.dropped)
    }
}

thread_local! {
    static SINK: RefCell<Option<TraceSink>> = const { RefCell::new(None) };
}

/// Installs a fresh sink with the given ring capacity on this thread,
/// replacing (and discarding) any previous one. Available in both
/// feature modes so drivers keep one code path; without the `trace`
/// feature the installed sink simply stays empty.
pub fn install(capacity: usize) {
    SINK.with(|s| *s.borrow_mut() = Some(TraceSink::new(capacity)));
}

/// Removes and returns this thread's sink, stopping collection.
pub fn take() -> Option<TraceSink> {
    SINK.with(|s| s.borrow_mut().take())
}

/// Records the event produced by `f` into this thread's sink, if one is
/// installed. With the `trace` feature off this compiles to nothing and
/// `f` is never evaluated.
#[cfg(feature = "trace")]
#[inline]
pub fn emit_with<F: FnOnce() -> TraceEvent>(f: F) {
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.record(f());
        }
    });
}

/// Records the event produced by `f` into this thread's sink, if one is
/// installed. With the `trace` feature off this compiles to nothing and
/// `f` is never evaluated.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn emit_with<F: FnOnce() -> TraceEvent>(_f: F) {}

/// Sets the simulated clock stamped onto subsequent records of this
/// thread's sink. Compiles to nothing with the `trace` feature off.
#[cfg(feature = "trace")]
#[inline]
pub fn set_clock(clock: u64) {
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.set_clock(clock);
        }
    });
}

/// Sets the simulated clock stamped onto subsequent records of this
/// thread's sink. Compiles to nothing with the `trace` feature off.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn set_clock(_clock: u64) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(misses: u64) -> TraceEvent {
        TraceEvent::IntervalEnd { cpu: 0, tid: 1, reason: "yield", refs: misses, misses }
    }

    #[test]
    fn records_in_order_below_capacity() {
        let mut sink = TraceSink::new(8);
        sink.set_clock(5);
        sink.record(ev(1));
        sink.set_clock(9);
        sink.record(ev(2));
        let recs = sink.records();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].seq, recs[0].clock), (1, 5));
        assert_eq!((recs[1].seq, recs[1].clock), (2, 9));
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.events_emitted(), 2);
    }

    #[test]
    fn wraps_at_capacity_keeping_newest() {
        let mut sink = TraceSink::new(4);
        for i in 1..=6u64 {
            sink.record(ev(i));
        }
        let recs = sink.records();
        assert_eq!(recs.len(), 4, "ring must stay at capacity");
        let seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6], "oldest records are overwritten first");
        assert_eq!(sink.events_emitted(), 6);
    }

    #[test]
    fn saturation_counts_drops() {
        let mut sink = TraceSink::new(2);
        for i in 0..10u64 {
            sink.record(ev(i));
        }
        assert_eq!(sink.dropped(), 8);
        // The aggregate still saw every event, wrapped or not.
        assert_eq!(sink.aggregate().intervals, 10);
        assert_eq!(sink.summary(None).dropped, 8);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut sink = TraceSink::new(0);
        sink.record(ev(1));
        sink.record(ev(2));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.records()[0].seq, 2);
    }

    #[test]
    fn install_take_round_trip() {
        install(16);
        emit_with(|| ev(3));
        let sink = take().expect("sink was installed");
        assert!(take().is_none(), "take removes the sink");
        if ENABLED {
            assert_eq!(sink.events_emitted(), 1);
        } else {
            assert_eq!(sink.events_emitted(), 0, "disabled build must record nothing");
        }
    }

    #[test]
    fn emit_without_sink_is_a_no_op() {
        let _ = take();
        emit_with(|| ev(1));
        set_clock(7);
        assert!(take().is_none());
    }
}
