//! *barnes*: Barnes-Hut hierarchical N-body (SPLASH-2, paper §3.3).
//!
//! A real octree is built over random 3-D bodies; the monitored work
//! thread computes gravitational accelerations for every body with the
//! standard multipole-acceptance criterion (θ), reading one simulated
//! cache line per tree node visited and per body. The paper notes that
//! *barnes* "was specifically optimized for locality in the second
//! release of SPLASH", making its references more clustered than the
//! model's uniform assumption — the predicted footprints come out
//! somewhat higher than observed, which this implementation reproduces.

// Coordinate loops index several parallel arrays; enumerate() would
// obscure them.
#![allow(clippy::needless_range_loop)]

use crate::common::{rng, LINE};
use active_threads::{BatchCtx, Control, Engine, Program, Scheduler, ThreadId};
use locality_sim::VAddr;
use rand::Rng;
use std::rc::Rc;

/// Parameters of a barnes run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarnesParams {
    /// Number of bodies.
    pub bodies: usize,
    /// Multipole acceptance parameter θ (smaller = more node visits).
    pub theta: f64,
    /// Bodies processed per batch (sampling granularity).
    pub bodies_per_batch: usize,
    /// Time steps (force passes over all bodies).
    pub steps: u32,
    /// RNG seed for body positions.
    pub seed: u64,
}

impl Default for BarnesParams {
    fn default() -> Self {
        BarnesParams { bodies: 4096, theta: 0.6, bodies_per_batch: 32, steps: 4, seed: 21 }
    }
}

impl BarnesParams {
    /// A scaled-down variant for fast tests.
    pub fn small() -> Self {
        BarnesParams { bodies: 256, theta: 0.8, bodies_per_batch: 32, steps: 2, seed: 21 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Body {
    pos: [f64; 3],
    mass: f64,
}

#[derive(Debug, Clone)]
struct Node {
    center: [f64; 3],
    half: f64,
    mass: f64,
    com: [f64; 3],
    children: [Option<usize>; 8],
    body: Option<usize>,
}

/// The octree and bodies of one instance.
#[derive(Debug)]
pub struct BarnesScene {
    bodies: Vec<Body>,
    nodes: Vec<Node>,
    bodies_base: VAddr,
    nodes_base: VAddr,
    /// Total gravitational potential-ish checksum (test oracle).
    pub checksum: std::cell::Cell<f64>,
}

impl BarnesScene {
    /// Builds bodies and the octree.
    pub fn new(bodies_base: VAddr, nodes_base: VAddr, params: &BarnesParams) -> Rc<Self> {
        let mut r = rng(params.seed);
        let bodies: Vec<Body> = (0..params.bodies)
            .map(|_| Body {
                pos: [r.gen::<f64>(), r.gen::<f64>(), r.gen::<f64>()],
                mass: 0.5 + r.gen::<f64>(),
            })
            .collect();
        let mut scene = BarnesScene {
            bodies,
            nodes: vec![Node {
                center: [0.5, 0.5, 0.5],
                half: 0.5,
                mass: 0.0,
                com: [0.0; 3],
                children: [None; 8],
                body: None,
            }],
            bodies_base,
            nodes_base,
            checksum: std::cell::Cell::new(0.0),
        };
        for i in 0..scene.bodies.len() {
            scene.insert(0, i);
        }
        scene.summarize(0);
        Rc::new(scene)
    }

    fn octant(node: &Node, pos: &[f64; 3]) -> usize {
        let mut o = 0;
        for d in 0..3 {
            if pos[d] >= node.center[d] {
                o |= 1 << d;
            }
        }
        o
    }

    fn child_center(node: &Node, o: usize) -> ([f64; 3], f64) {
        let h = node.half / 2.0;
        let mut c = node.center;
        for (d, cd) in c.iter_mut().enumerate() {
            *cd += if o & (1 << d) != 0 { h } else { -h };
        }
        (c, h)
    }

    fn insert(&mut self, node_idx: usize, body_idx: usize) {
        let pos = self.bodies[body_idx].pos;
        let mut cur = node_idx;
        let mut pending = body_idx;
        // Iterative insertion to avoid deep recursion.
        loop {
            let is_leaf = self.nodes[cur].children.iter().all(Option::is_none);
            if is_leaf && self.nodes[cur].body.is_none() {
                self.nodes[cur].body = Some(pending);
                return;
            }
            if is_leaf {
                // Split: push the resident body down first.
                let resident = self.nodes[cur].body.take().expect("leaf body");
                let o = Self::octant(&self.nodes[cur], &self.bodies[resident].pos);
                let (c, h) = Self::child_center(&self.nodes[cur], o);
                let child = self.new_node(c, h);
                self.nodes[cur].children[o] = Some(child);
                self.nodes[child].body = Some(resident);
            }
            let o = Self::octant(&self.nodes[cur], &pos);
            match self.nodes[cur].children[o] {
                Some(child) => cur = child,
                None => {
                    let (c, h) = Self::child_center(&self.nodes[cur], o);
                    let child = self.new_node(c, h);
                    self.nodes[cur].children[o] = Some(child);
                    cur = child;
                }
            }
            // Degenerate co-located bodies: stop splitting at tiny cells.
            if self.nodes[cur].half < 1e-9 {
                self.nodes[cur].body = Some(pending);
                return;
            }
            let _ = &mut pending;
        }
    }

    fn new_node(&mut self, center: [f64; 3], half: f64) -> usize {
        self.nodes.push(Node {
            center,
            half,
            mass: 0.0,
            com: [0.0; 3],
            children: [None; 8],
            body: None,
        });
        self.nodes.len() - 1
    }

    fn summarize(&mut self, idx: usize) -> (f64, [f64; 3]) {
        let children = self.nodes[idx].children;
        let mut mass = 0.0;
        let mut com = [0.0; 3];
        if let Some(b) = self.nodes[idx].body {
            let body = self.bodies[b];
            mass += body.mass;
            for d in 0..3 {
                com[d] += body.mass * body.pos[d];
            }
        }
        for child in children.into_iter().flatten() {
            let (m, c) = self.summarize(child);
            mass += m;
            for d in 0..3 {
                com[d] += m * c[d];
            }
        }
        if mass > 0.0 {
            for c in &mut com {
                *c /= mass;
            }
        }
        self.nodes[idx].mass = mass;
        self.nodes[idx].com = com;
        (mass, com)
    }

    fn node_addr(&self, idx: usize) -> VAddr {
        self.nodes_base.offset(idx as u64 * LINE)
    }

    fn body_addr(&self, idx: usize) -> VAddr {
        self.bodies_base.offset(idx as u64 * LINE)
    }

    /// Real force computation for one body; touches every visited node.
    fn force_on(&self, ctx: &mut BatchCtx<'_>, body_idx: usize, theta: f64) -> [f64; 3] {
        ctx.read(self.body_addr(body_idx));
        let pos = self.bodies[body_idx].pos;
        let mut acc = [0.0f64; 3];
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            ctx.read(self.node_addr(idx));
            ctx.compute(20);
            let node = &self.nodes[idx];
            if node.mass == 0.0 {
                continue;
            }
            let mut d2 = 0.0;
            for d in 0..3 {
                let dx = node.com[d] - pos[d];
                d2 += dx * dx;
            }
            let dist = d2.sqrt().max(1e-6);
            let open =
                (2.0 * node.half) / dist > theta && node.children.iter().any(Option::is_some);
            if open {
                for child in node.children.into_iter().flatten() {
                    stack.push(child);
                }
            } else if !(node.body == Some(body_idx) && node.children.iter().all(Option::is_none)) {
                let f = node.mass / (d2 + 1e-9);
                for d in 0..3 {
                    acc[d] += f * (node.com[d] - pos[d]) / dist;
                }
            }
        }
        ctx.write(self.body_addr(body_idx));
        acc
    }

    /// Bytes of the bodies region.
    pub fn bodies_bytes(&self) -> u64 {
        self.bodies.len() as u64 * LINE
    }

    /// Bytes of the nodes region.
    pub fn nodes_bytes(&self) -> u64 {
        self.nodes.len() as u64 * LINE
    }
}

/// The monitored work thread: `steps` force-computation passes over all
/// bodies (the tree is kept fixed across the short time steps).
pub struct BarnesWorker {
    scene: Rc<BarnesScene>,
    params: BarnesParams,
    next_body: usize,
    step: u32,
}

impl Program for BarnesWorker {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        let n = self.scene.bodies.len();
        if self.next_body == 0 && self.step == 0 {
            ctx.register_region(self.scene.bodies_base, self.scene.bodies_bytes());
            ctx.register_region(self.scene.nodes_base, self.scene.nodes_bytes());
        }
        let end = (self.next_body + self.params.bodies_per_batch).min(n);
        let mut sum = self.scene.checksum.get();
        for b in self.next_body..end {
            let acc = self.scene.force_on(ctx, b, self.params.theta);
            sum += acc[0] + acc[1] + acc[2];
        }
        self.scene.checksum.set(sum);
        self.next_body = end;
        if self.next_body >= n {
            self.next_body = 0;
            self.step += 1;
            if self.step >= self.params.steps {
                return Control::Exit;
            }
        }
        Control::Yield
    }

    fn name(&self) -> &str {
        "barnes"
    }
}

/// Spawns the monitored single work thread.
pub fn spawn_single<S: Scheduler>(engine: &mut Engine<S>, params: &BarnesParams) -> ThreadId {
    // Nodes can outnumber bodies ~2x; allocate after building the scene.
    let bodies_base = engine.machine_mut().alloc(params.bodies as u64 * LINE, LINE);
    // Reserve a generous node region, then rebuild with the real size.
    let scene_probe = BarnesScene::new(bodies_base, VAddr(0), params);
    let nodes_bytes = scene_probe.nodes_bytes();
    drop(scene_probe);
    let nodes_base = engine.machine_mut().alloc(nodes_bytes, LINE);
    let scene = BarnesScene::new(bodies_base, nodes_base, params);
    engine.spawn(Box::new(BarnesWorker { scene, params: *params, next_body: 0, step: 0 }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_threads::{EngineConfig, SchedPolicy};
    use locality_sim::MachineConfig;

    #[test]
    fn tree_contains_all_bodies() {
        let params = BarnesParams::small();
        let scene = BarnesScene::new(VAddr(0x10000), VAddr(0x4000000), &params);
        // Total tree mass equals the sum of body masses.
        let body_mass: f64 = scene.bodies.iter().map(|b| b.mass).sum();
        assert!((scene.nodes[0].mass - body_mass).abs() < 1e-9);
        // Root COM inside the unit cube.
        for d in 0..3 {
            assert!(scene.nodes[0].com[d] > 0.0 && scene.nodes[0].com[d] < 1.0);
        }
    }

    #[test]
    fn worker_completes_with_plausible_traffic() {
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Fcfs,
            EngineConfig::default(),
        )
        .unwrap();
        let params = BarnesParams::small();
        spawn_single(&mut e, &params);
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 1);
        // Each body reads itself and at least the root.
        assert!(report.total_instructions > 2 * params.bodies as u64);
        assert!(report.total_l2_misses > 50);
    }

    #[test]
    fn theta_controls_work() {
        let run = |theta| {
            let mut e = active_threads::Engine::new(
                MachineConfig::ultra1(),
                SchedPolicy::Fcfs,
                EngineConfig::default(),
            )
            .unwrap();
            let params = BarnesParams { theta, ..BarnesParams::small() };
            spawn_single(&mut e, &params);
            e.run().unwrap().total_instructions
        };
        assert!(run(0.3) > run(1.2), "smaller theta must open more cells");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut e = active_threads::Engine::new(
                MachineConfig::ultra1(),
                SchedPolicy::Fcfs,
                EngineConfig::default(),
            )
            .unwrap();
            spawn_single(&mut e, &BarnesParams::small());
            e.run().unwrap()
        };
        assert_eq!(run(), run());
    }
}
