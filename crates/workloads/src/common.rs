//! Shared workload helpers: deterministic RNG, line-granular touch
//! helpers, element addressing.

use active_threads::BatchCtx;
use locality_sim::VAddr;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The E-cache line size all workloads use for line-granular touches.
pub const LINE: u64 = 64;

/// Creates the deterministic RNG every workload seeds from.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The address of element `idx` in an array of `elem_bytes`-byte elements
/// starting at `base`.
pub fn elem_addr(base: VAddr, idx: u64, elem_bytes: u64) -> VAddr {
    base.offset(idx * elem_bytes)
}

/// Reads the cache line containing element `idx` (deduplicating against
/// the previously-touched line, which a real program keeps in registers).
#[derive(Debug, Clone, Copy, Default)]
pub struct LineToucher {
    last_line: Option<u64>,
}

impl LineToucher {
    /// Creates a toucher with no history.
    pub fn new() -> Self {
        LineToucher::default()
    }

    /// Forgets the last-touched line (e.g. at a batch boundary).
    pub fn reset(&mut self) {
        self.last_line = None;
    }

    /// Issues a read for `addr`'s line unless it is the line touched by
    /// the immediately preceding call.
    pub fn read(&mut self, ctx: &mut BatchCtx<'_>, addr: VAddr) {
        let line = addr.0 / LINE;
        if self.last_line != Some(line) {
            ctx.read(VAddr(line * LINE));
            self.last_line = Some(line);
        }
    }

    /// Issues a write for `addr`'s line unless it repeats the last line.
    pub fn write(&mut self, ctx: &mut BatchCtx<'_>, addr: VAddr) {
        let line = addr.0 / LINE;
        if self.last_line != Some(line) {
            ctx.write(VAddr(line * LINE));
            self.last_line = Some(line);
        }
    }

    /// Reads every line covering `[start, start+bytes)` as one batched
    /// run — byte-for-byte the accesses an ascending per-element
    /// [`read`](Self::read) sweep over the span would issue (the first
    /// line is deduplicated against the previous touch, later lines
    /// cannot repeat because the sweep ascends).
    pub fn read_span(&mut self, ctx: &mut BatchCtx<'_>, start: VAddr, bytes: u64) {
        if let Some((first, count, last)) = self.span_lines(start, bytes) {
            ctx.read_run_points(VAddr(first * LINE), LINE, count);
            self.last_line = Some(last);
        }
    }

    /// Writes every line covering `[start, start+bytes)` as one batched
    /// run; see [`read_span`](Self::read_span).
    pub fn write_span(&mut self, ctx: &mut BatchCtx<'_>, start: VAddr, bytes: u64) {
        if let Some((first, count, last)) = self.span_lines(start, bytes) {
            ctx.write_run_points(VAddr(first * LINE), LINE, count);
            self.last_line = Some(last);
        }
    }

    /// The `(first_line, count, last_line)` of the lines still to touch
    /// for a span, after deduplicating the leading line; `None` if the
    /// whole span collapses into the previously-touched line.
    fn span_lines(&self, start: VAddr, bytes: u64) -> Option<(u64, u64, u64)> {
        if bytes == 0 {
            return None;
        }
        let mut first = start.0 / LINE;
        let last = (start.0 + bytes - 1) / LINE;
        if self.last_line == Some(first) {
            if first == last {
                return None;
            }
            first += 1;
        }
        Some((first, last - first + 1, last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(7);
        let mut b = rng(7);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = rng(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn elem_addressing() {
        let base = VAddr(0x1000);
        assert_eq!(elem_addr(base, 0, 8), VAddr(0x1000));
        assert_eq!(elem_addr(base, 3, 8), VAddr(0x1018));
    }
}
