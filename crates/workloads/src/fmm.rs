//! *fmm*: a fast multipole method in two dimensions (SPLASH-2's FMM,
//! paper §3.3: "using the adaptive Fast Multipole…").
//!
//! A real (truncated, p-term) 2-D multipole solver over a uniform
//! quadtree: upward pass (P2M then M2M), translation pass (M2L over each
//! cell's interaction list), downward pass (L2L), and near-field direct
//! evaluation (P2P). Each cell's expansion occupies one simulated cache
//! line; particles occupy lines of their own region. The phase structure
//! produces the characteristic burst-then-steady reference pattern of
//! hierarchical N-body codes.

// Coordinate loops index several parallel arrays; enumerate() would
// obscure them.
#![allow(clippy::needless_range_loop)]

use crate::common::{rng, LINE};
use active_threads::{BatchCtx, Control, Engine, Program, Scheduler, ThreadId};
use locality_sim::VAddr;
use rand::Rng;
use std::rc::Rc;

/// Number of multipole terms.
const P: usize = 4;

/// Parameters of an fmm run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmmParams {
    /// Number of particles.
    pub particles: usize,
    /// Quadtree depth (leaves = 4^depth).
    pub depth: u32,
    /// Cells processed per batch.
    pub cells_per_batch: usize,
    /// Full FMM iterations (time steps).
    pub iterations: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FmmParams {
    fn default() -> Self {
        FmmParams { particles: 4096, depth: 4, cells_per_batch: 16, iterations: 4, seed: 33 }
    }
}

impl FmmParams {
    /// A scaled-down variant for fast tests.
    pub fn small() -> Self {
        FmmParams { particles: 256, depth: 3, cells_per_batch: 16, iterations: 2, seed: 33 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Particle {
    x: f64,
    y: f64,
    q: f64,
    potential: f64,
}

#[derive(Debug, Clone, Default)]
struct Cell {
    /// Multipole coefficients about the cell center.
    multipole: [f64; P],
    /// Local expansion coefficients.
    local: [f64; P],
    cx: f64,
    cy: f64,
    /// Particle indices (leaves only).
    members: Vec<usize>,
}

/// Phases of the FMM work thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pass {
    P2m,
    M2m { level: u32 },
    M2l { level: u32 },
    L2l { level: u32 },
    Evaluate,
    Done,
}

/// The FMM instance.
#[derive(Debug)]
pub struct FmmScene {
    particles: std::cell::RefCell<Vec<Particle>>,
    cells: std::cell::RefCell<Vec<Cell>>,
    depth: u32,
    particles_base: VAddr,
    cells_base: VAddr,
}

/// Index of the first cell of `level` in the level-order array.
fn level_start(level: u32) -> usize {
    // (4^level - 1) / 3
    ((4usize.pow(level)) - 1) / 3
}

/// Cells at `level`.
fn level_cells(level: u32) -> usize {
    4usize.pow(level)
}

impl FmmScene {
    /// Builds particles and the quadtree.
    pub fn new(particles_base: VAddr, cells_base: VAddr, params: &FmmParams) -> Rc<Self> {
        let mut r = rng(params.seed);
        let particles: Vec<Particle> = (0..params.particles)
            .map(|_| Particle { x: r.gen(), y: r.gen(), q: 1.0 + r.gen::<f64>(), potential: 0.0 })
            .collect();
        let total_cells = level_start(params.depth + 1);
        let mut cells = vec![Cell::default(); total_cells];
        // Centers.
        for level in 0..=params.depth {
            let side = 1 << level;
            let start = level_start(level);
            for iy in 0..side {
                for ix in 0..side {
                    let c = &mut cells[start + (iy * side + ix) as usize];
                    c.cx = (ix as f64 + 0.5) / side as f64;
                    c.cy = (iy as f64 + 0.5) / side as f64;
                }
            }
        }
        // Leaf membership.
        let side = 1usize << params.depth;
        let start = level_start(params.depth);
        for (i, p) in particles.iter().enumerate() {
            let ix = ((p.x * side as f64) as usize).min(side - 1);
            let iy = ((p.y * side as f64) as usize).min(side - 1);
            cells[start + iy * side + ix].members.push(i);
        }
        Rc::new(FmmScene {
            particles: std::cell::RefCell::new(particles),
            cells: std::cell::RefCell::new(cells),
            depth: params.depth,
            particles_base,
            cells_base,
        })
    }

    fn cell_addr(&self, idx: usize) -> VAddr {
        self.cells_base.offset(idx as u64 * LINE)
    }

    fn particle_addr(&self, idx: usize) -> VAddr {
        self.particles_base.offset(idx as u64 * LINE)
    }

    /// Total cells.
    pub fn cell_count(&self) -> usize {
        self.cells.borrow().len()
    }

    /// Sum of particle potentials (test oracle; non-zero after a run).
    pub fn total_potential(&self) -> f64 {
        self.particles.borrow().iter().map(|p| p.potential).sum()
    }

    fn cell_index(&self, level: u32, ix: usize, iy: usize) -> usize {
        let side = 1usize << level;
        level_start(level) + iy * side + ix
    }

    fn children_of(&self, level: u32, ix: usize, iy: usize) -> [usize; 4] {
        [
            self.cell_index(level + 1, 2 * ix, 2 * iy),
            self.cell_index(level + 1, 2 * ix + 1, 2 * iy),
            self.cell_index(level + 1, 2 * ix, 2 * iy + 1),
            self.cell_index(level + 1, 2 * ix + 1, 2 * iy + 1),
        ]
    }
}

/// The monitored FMM work thread.
pub struct FmmWorker {
    scene: Rc<FmmScene>,
    params: FmmParams,
    pass: Pass,
    cursor: usize,
    iteration: u32,
}

impl FmmWorker {
    fn p2m(&mut self, ctx: &mut BatchCtx<'_>, idx: usize) {
        let scene = &self.scene;
        let mut cells = scene.cells.borrow_mut();
        let particles = scene.particles.borrow();
        ctx.read(scene.cell_addr(idx));
        let cell = &mut cells[idx];
        let mut coeffs = [0.0f64; P];
        for &pi in &cell.members {
            ctx.read(scene.particle_addr(pi));
            let p = &particles[pi];
            let (dx, dy) = (p.x - cell.cx, p.y - cell.cy);
            let r = (dx * dx + dy * dy).sqrt();
            let mut rk = 1.0;
            for c in coeffs.iter_mut() {
                *c += p.q * rk;
                rk *= r;
            }
            ctx.compute(4 * P as u64);
        }
        cell.multipole = coeffs;
        ctx.write(scene.cell_addr(idx));
    }

    fn m2m(&mut self, ctx: &mut BatchCtx<'_>, level: u32, ix: usize, iy: usize) {
        let scene = &self.scene;
        let children = scene.children_of(level, ix, iy);
        let parent_idx = scene.cell_index(level, ix, iy);
        let mut cells = scene.cells.borrow_mut();
        let mut acc = [0.0f64; P];
        for child in children {
            ctx.read(scene.cell_addr(child));
            let (ccx, ccy) = (cells[child].cx, cells[child].cy);
            let (pcx, pcy) = (cells[parent_idx].cx, cells[parent_idx].cy);
            let shift = ((ccx - pcx) * (ccx - pcx) + (ccy - pcy) * (ccy - pcy)).sqrt();
            let m = cells[child].multipole;
            let mut sk = 1.0;
            for k in 0..P {
                acc[k] += m[k] * sk;
                sk *= 1.0 + shift;
            }
            ctx.compute(4 * P as u64);
        }
        cells[parent_idx].multipole = acc;
        ctx.write(scene.cell_addr(parent_idx));
    }

    fn m2l(&mut self, ctx: &mut BatchCtx<'_>, level: u32, ix: usize, iy: usize) {
        let scene = &self.scene;
        let side = 1usize << level;
        let target_idx = scene.cell_index(level, ix, iy);
        let mut cells = scene.cells.borrow_mut();
        let mut local = cells[target_idx].local;
        // Interaction list: cells at the same level within distance 2..3
        // (well separated; children of the parent's neighbours).
        for sy in iy.saturating_sub(3)..(iy + 4).min(side) {
            for sx in ix.saturating_sub(3)..(ix + 4).min(side) {
                let (dx, dy) = ((sx as i64 - ix as i64).abs(), (sy as i64 - iy as i64).abs());
                if dx.max(dy) < 2 {
                    continue; // near field, handled directly
                }
                let src_idx = scene.cell_index(level, sx, sy);
                ctx.read(scene.cell_addr(src_idx));
                let (tx, ty) = (cells[target_idx].cx, cells[target_idx].cy);
                let (cx, cy) = (cells[src_idx].cx, cells[src_idx].cy);
                let r = ((tx - cx) * (tx - cx) + (ty - cy) * (ty - cy)).sqrt().max(1e-9);
                let m = cells[src_idx].multipole;
                let mut rk = r;
                for (k, l) in local.iter_mut().enumerate() {
                    *l += m[k] / rk;
                    rk *= r;
                }
                ctx.compute(6 * P as u64);
            }
        }
        cells[target_idx].local = local;
        ctx.write(scene.cell_addr(target_idx));
    }

    fn l2l(&mut self, ctx: &mut BatchCtx<'_>, level: u32, ix: usize, iy: usize) {
        let scene = &self.scene;
        let parent_idx = scene.cell_index(level, ix, iy);
        let children = scene.children_of(level, ix, iy);
        let mut cells = scene.cells.borrow_mut();
        ctx.read(scene.cell_addr(parent_idx));
        let parent_local = cells[parent_idx].local;
        for child in children {
            for k in 0..P {
                cells[child].local[k] += parent_local[k] * 0.5f64.powi(k as i32);
            }
            ctx.write(scene.cell_addr(child));
            ctx.compute(2 * P as u64);
        }
    }

    fn evaluate(&mut self, ctx: &mut BatchCtx<'_>, leaf: usize) {
        let scene = &self.scene;
        let side = 1usize << scene.depth;
        let start = level_start(scene.depth);
        let (lx, ly) = ((leaf - start) % side, (leaf - start) / side);
        let members = scene.cells.borrow()[leaf].members.clone();
        ctx.read(scene.cell_addr(leaf));
        let mut particles = scene.particles.borrow_mut();
        let cells = scene.cells.borrow();
        for &pi in &members {
            ctx.read(scene.particle_addr(pi));
            // Far field from the local expansion.
            let mut pot = 0.0;
            let p = particles[pi];
            let cell = &cells[leaf];
            let r = ((p.x - cell.cx) * (p.x - cell.cx) + (p.y - cell.cy) * (p.y - cell.cy)).sqrt();
            let mut rk = 1.0;
            for l in cell.local {
                pot += l * rk;
                rk *= r;
            }
            // Near field: direct sum over the 3x3 leaf neighbourhood.
            for ny in ly.saturating_sub(1)..(ly + 2).min(side) {
                for nx in lx.saturating_sub(1)..(lx + 2).min(side) {
                    let nidx = start + ny * side + nx;
                    for &qi in &cells[nidx].members {
                        if qi == pi {
                            continue;
                        }
                        ctx.read(scene.particle_addr(qi));
                        let q = particles[qi];
                        let d = ((p.x - q.x) * (p.x - q.x) + (p.y - q.y) * (p.y - q.y)).sqrt();
                        pot += q.q / d.max(1e-6);
                        ctx.compute(8);
                    }
                }
            }
            particles[pi].potential = pot;
            ctx.write(scene.particle_addr(pi));
        }
    }
}

impl Program for FmmWorker {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        let depth = self.scene.depth;
        if self.pass == Pass::P2m && self.cursor == 0 && self.iteration == 0 {
            let cells_bytes = self.scene.cell_count() as u64 * LINE;
            let parts_bytes = self.params.particles as u64 * LINE;
            ctx.register_region(self.scene.cells_base, cells_bytes);
            ctx.register_region(self.scene.particles_base, parts_bytes);
        }
        let budget = self.params.cells_per_batch;
        let mut done = 0;
        while done < budget {
            match self.pass {
                Pass::P2m => {
                    let start = level_start(depth);
                    let count = level_cells(depth);
                    if self.cursor >= count {
                        self.pass = if depth > 0 {
                            Pass::M2m { level: depth - 1 }
                        } else {
                            Pass::M2l { level: 0 }
                        };
                        self.cursor = 0;
                        continue;
                    }
                    self.p2m(ctx, start + self.cursor);
                    self.cursor += 1;
                }
                Pass::M2m { level } => {
                    let side = 1usize << level;
                    if self.cursor >= side * side {
                        self.pass = if level == 0 {
                            Pass::M2l { level: 2.min(depth) }
                        } else {
                            Pass::M2m { level: level - 1 }
                        };
                        self.cursor = 0;
                        continue;
                    }
                    let (ix, iy) = (self.cursor % side, self.cursor / side);
                    self.m2m(ctx, level, ix, iy);
                    self.cursor += 1;
                }
                Pass::M2l { level } => {
                    let side = 1usize << level;
                    if self.cursor >= side * side {
                        self.pass = if level == depth {
                            Pass::L2l { level: 2.min(depth).saturating_sub(1) }
                        } else {
                            Pass::M2l { level: level + 1 }
                        };
                        self.cursor = 0;
                        continue;
                    }
                    let (ix, iy) = (self.cursor % side, self.cursor / side);
                    self.m2l(ctx, level, ix, iy);
                    self.cursor += 1;
                }
                Pass::L2l { level } => {
                    if level >= depth {
                        self.pass = Pass::Evaluate;
                        self.cursor = 0;
                        continue;
                    }
                    let side = 1usize << level;
                    if self.cursor >= side * side {
                        self.pass = Pass::L2l { level: level + 1 };
                        self.cursor = 0;
                        continue;
                    }
                    let (ix, iy) = (self.cursor % side, self.cursor / side);
                    self.l2l(ctx, level, ix, iy);
                    self.cursor += 1;
                }
                Pass::Evaluate => {
                    let start = level_start(depth);
                    let count = level_cells(depth);
                    if self.cursor >= count {
                        self.pass = Pass::Done;
                        continue;
                    }
                    self.evaluate(ctx, start + self.cursor);
                    self.cursor += 1;
                }
                Pass::Done => {
                    self.iteration += 1;
                    if self.iteration >= self.params.iterations {
                        return Control::Exit;
                    }
                    self.pass = Pass::P2m;
                    self.cursor = 0;
                    continue;
                }
            }
            done += 1;
        }
        Control::Yield
    }

    fn name(&self) -> &str {
        "fmm"
    }
}

/// Spawns the monitored single work thread.
pub fn spawn_single<S: Scheduler>(engine: &mut Engine<S>, params: &FmmParams) -> ThreadId {
    let parts_base = engine.machine_mut().alloc(params.particles as u64 * LINE, LINE);
    let cells = level_start(params.depth + 1) as u64;
    let cells_base = engine.machine_mut().alloc(cells * LINE, LINE);
    let scene = FmmScene::new(parts_base, cells_base, params);
    engine.spawn(Box::new(FmmWorker {
        scene,
        params: *params,
        pass: Pass::P2m,
        cursor: 0,
        iteration: 0,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_threads::{EngineConfig, SchedPolicy};
    use locality_sim::MachineConfig;

    #[test]
    fn level_indexing() {
        assert_eq!(level_start(0), 0);
        assert_eq!(level_start(1), 1);
        assert_eq!(level_start(2), 5);
        assert_eq!(level_start(3), 21);
        assert_eq!(level_cells(2), 16);
    }

    #[test]
    fn every_particle_lands_in_a_leaf() {
        let params = FmmParams::small();
        let scene = FmmScene::new(VAddr(0x10000), VAddr(0x4000000), &params);
        let cells = scene.cells.borrow();
        let total: usize = (level_start(params.depth)..level_start(params.depth + 1))
            .map(|i| cells[i].members.len())
            .sum();
        assert_eq!(total, params.particles);
    }

    #[test]
    fn run_produces_potentials() {
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Fcfs,
            EngineConfig::default(),
        )
        .unwrap();
        let params = FmmParams::small();
        let parts_base = e.machine_mut().alloc(params.particles as u64 * LINE, LINE);
        let cells = level_start(params.depth + 1) as u64;
        let cells_base = e.machine_mut().alloc(cells * LINE, LINE);
        let scene = FmmScene::new(parts_base, cells_base, &params);
        e.spawn(Box::new(FmmWorker {
            scene: scene.clone(),
            params,
            pass: Pass::P2m,
            cursor: 0,
            iteration: 0,
        }));
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 1);
        assert!(scene.total_potential() > 0.0, "potentials must be computed");
        assert!(report.context_switches > 2, "worker yields between batches");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut e = active_threads::Engine::new(
                MachineConfig::ultra1(),
                SchedPolicy::Fcfs,
                EngineConfig::default(),
            )
            .unwrap();
            spawn_single(&mut e, &FmmParams::small());
            e.run().unwrap()
        };
        assert_eq!(run(), run());
    }
}
