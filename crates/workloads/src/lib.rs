//! # locality-workloads
//!
//! All the workloads of the paper's evaluation, reimplemented against the
//! Active Threads batch-program model:
//!
//! | workload | paper role | here |
//! |---|---|---|
//! | `walk` | random memory walk microbenchmark (Fig. 4) | [`walk`] |
//! | `tasks` | Squillante–Lazowska disjoint-footprint benchmark (§5) | [`tasks`] |
//! | `merge` | parallel mergesort, 100k elements, ~1000 leaf threads (§3.3, §5) | [`merge`] |
//! | `photo` | softening filter over an RGB pixmap, thread per row (§3.3, §5) | [`photo`] |
//! | `tsp` | branch-and-bound travelling salesman, 100 cities (§5) | [`tsp`] |
//! | `barnes` | SPLASH-2 Barnes-Hut N-body (§3.3) | [`barnes`] |
//! | `fmm` | SPLASH-2 adaptive fast multipole (§3.3) | [`fmm`] |
//! | `ocean` | SPLASH-2-style regular-grid SOR solver (§3.3) | [`ocean`] |
//! | `raytrace` | SPLASH-2 raytracer (conflict-miss anomaly, Fig. 7) | [`raytrace`] |
//! | `typechecker` | Sather compiler typechecker (nonstationary anomaly, Fig. 7) | [`typechecker`] |
//!
//! Each workload performs its *real* computation on native Rust data
//! (sorting actually sorts, the filter actually filters, branch-and-bound
//! actually bounds) while issuing the corresponding simulated memory
//! references, so the reference streams carry genuine application
//! structure — clustering, run lengths, reuse — rather than synthetic
//! noise. Data accesses are issued at cache-line granularity.
//!
//! The multi-threaded workloads (`tasks`, `merge`, `photo`, `tsp`) carry
//! the paper's `at_share` annotations; coefficient values are derived
//! from the exact region overlaps where the paper derives them from
//! program knowledge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barnes;
pub mod common;
pub mod fmm;
pub mod merge;
pub mod ocean;
pub mod photo;
pub mod raytrace;
pub mod tasks;
pub mod tsp;
pub mod typechecker;
pub mod walk;

/// The eight applications of the paper's simulation study (§3.3), in the
/// order they appear in our Figure 5/6/7 reproductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Barnes-Hut N-body.
    Barnes,
    /// Adaptive fast multipole.
    Fmm,
    /// Regular-grid SOR solver.
    Ocean,
    /// Parallel mergesort worker.
    Merge,
    /// Image softening filter worker.
    Photo,
    /// Branch-and-bound TSP worker.
    Tsp,
    /// Sather typechecker (anomalous, Fig. 7).
    Typechecker,
    /// Raytracer (anomalous, Fig. 7).
    Raytrace,
}

impl App {
    /// The six well-behaved apps of Figure 5.
    pub const FIG5: [App; 6] =
        [App::Barnes, App::Fmm, App::Ocean, App::Merge, App::Photo, App::Tsp];

    /// The two anomalous apps of Figure 7.
    pub const FIG7: [App; 2] = [App::Typechecker, App::Raytrace];

    /// Lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            App::Barnes => "barnes",
            App::Fmm => "fmm",
            App::Ocean => "ocean",
            App::Merge => "merge",
            App::Photo => "photo",
            App::Tsp => "tsp",
            App::Typechecker => "typechecker",
            App::Raytrace => "raytrace",
        }
    }

    /// The app's default RNG seed (the one its `Params::default()`
    /// carries). Explicitly seeded runs make each experiment descriptor
    /// self-contained, so independent runs share no state.
    pub fn default_seed(&self) -> u64 {
        match self {
            App::Barnes => barnes::BarnesParams::default().seed,
            App::Fmm => fmm::FmmParams::default().seed,
            App::Ocean => ocean::OceanParams::default().seed,
            App::Merge => merge::MergeParams::default().seed,
            App::Photo => photo::PhotoParams::default().seed,
            App::Tsp => tsp::TspParams::default().seed,
            App::Typechecker => typechecker::TypecheckerParams::default().seed,
            App::Raytrace => raytrace::RaytraceParams::default().seed,
        }
    }

    /// Spawns the app's monitored single work thread into an engine,
    /// using scaled-down default parameters suitable for simulation.
    pub fn spawn_single<S: active_threads::Scheduler>(
        &self,
        engine: &mut active_threads::Engine<S>,
    ) -> locality_core::ThreadId {
        self.spawn_single_seeded(engine, self.default_seed())
    }

    /// [`App::spawn_single`] with an explicit RNG seed in place of the
    /// default parameters' seed.
    pub fn spawn_single_seeded<S: active_threads::Scheduler>(
        &self,
        engine: &mut active_threads::Engine<S>,
        seed: u64,
    ) -> locality_core::ThreadId {
        match self {
            App::Barnes => {
                barnes::spawn_single(engine, &barnes::BarnesParams { seed, ..Default::default() })
            }
            App::Fmm => fmm::spawn_single(engine, &fmm::FmmParams { seed, ..Default::default() }),
            App::Ocean => {
                ocean::spawn_single(engine, &ocean::OceanParams { seed, ..Default::default() })
            }
            App::Merge => {
                merge::spawn_single(engine, &merge::MergeParams { seed, ..Default::default() })
            }
            App::Photo => {
                photo::spawn_single(engine, &photo::PhotoParams { seed, ..Default::default() })
            }
            App::Tsp => tsp::spawn_single(engine, &tsp::TspParams { seed, ..Default::default() }),
            App::Typechecker => typechecker::spawn_single(
                engine,
                &typechecker::TypecheckerParams { seed, ..Default::default() },
            ),
            App::Raytrace => raytrace::spawn_single(
                engine,
                &raytrace::RaytraceParams { seed, ..Default::default() },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_names_unique() {
        let mut names: Vec<&str> =
            App::FIG5.iter().chain(App::FIG7.iter()).map(App::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
