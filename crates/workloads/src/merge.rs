//! Parallel mergesort (paper §2.3, §3.3, §5).
//!
//! The input array is split recursively; leaves below the cutoff run
//! insertion sort; parents join their children and merge the sorted
//! halves. The sort is *real* (the data ends up sorted) and every
//! element comparison/move issues the corresponding line-granular
//! simulated access.
//!
//! Annotations follow the paper's mergesort example: each child's state
//! is fully contained in the parent's, so the code inserts
//! `at_share(child, parent, 1.0)` after each creation — when a child
//! runs, it is prefetching state the parent will consume in its merge
//! phase. No parent→child edges are added (the parent touches no data
//! before spawning, exactly the paper's "the parent thread prefetches no
//! data for the children").

use crate::common::{elem_addr, rng, LineToucher, LINE};
use active_threads::{BatchCtx, Control, Engine, Program, Scheduler, ThreadId};
use locality_sim::VAddr;
use rand::Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// Parameters of a mergesort run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeParams {
    /// Number of 8-byte elements (paper: 100,000 uniformly distributed).
    pub elements: usize,
    /// Switch to insertion sort at or below this size (paper: 100).
    pub cutoff: usize,
    /// RNG seed for the input permutation.
    pub seed: u64,
}

impl Default for MergeParams {
    fn default() -> Self {
        MergeParams { elements: 100_000, cutoff: 100, seed: 12 }
    }
}

impl MergeParams {
    /// A scaled-down variant for fast tests.
    pub fn small() -> Self {
        MergeParams { elements: 2_000, cutoff: 50, seed: 12 }
    }
}

/// Data shared by every thread of one sort.
#[derive(Debug)]
pub struct MergeShared {
    data: RefCell<Vec<u64>>,
    base: VAddr,
}

impl MergeShared {
    /// Builds the input array (uniformly distributed values) in simulated
    /// memory starting at `base`.
    pub fn new(base: VAddr, params: &MergeParams) -> Rc<Self> {
        let mut r = rng(params.seed);
        let data = (0..params.elements).map(|_| r.gen::<u64>()).collect();
        Rc::new(MergeShared { data: RefCell::new(data), base })
    }

    /// Whether the array is fully sorted (test oracle).
    pub fn is_sorted(&self) -> bool {
        self.data.borrow().windows(2).all(|w| w[0] <= w[1])
    }
}

const ELEM: u64 = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Start,
    JoinRight,
    Merge,
}

/// One mergesort thread sorting `[lo, hi)`.
pub struct MergeThread {
    shared: Rc<MergeShared>,
    lo: usize,
    hi: usize,
    cutoff: usize,
    phase: Phase,
    left: Option<ThreadId>,
    right: Option<ThreadId>,
}

impl MergeThread {
    /// The root thread of a sort.
    pub fn root(shared: Rc<MergeShared>, params: &MergeParams) -> Self {
        MergeThread {
            shared,
            lo: 0,
            hi: params.elements,
            cutoff: params.cutoff.max(2),
            phase: Phase::Start,
            left: None,
            right: None,
        }
    }

    fn child(&self, lo: usize, hi: usize) -> MergeThread {
        MergeThread {
            shared: self.shared.clone(),
            lo,
            hi,
            cutoff: self.cutoff,
            phase: Phase::Start,
            left: None,
            right: None,
        }
    }

    fn addr(&self, idx: usize) -> VAddr {
        elem_addr(self.shared.base, idx as u64, ELEM)
    }

    /// Real insertion sort over `[lo, hi)` with line-granular accesses.
    fn insertion_sort(&mut self, ctx: &mut BatchCtx<'_>) {
        let (lo, hi) = (self.lo, self.hi);
        let base = self.shared.base;
        let mut data = self.shared.data.borrow_mut();
        let mut touch = LineToucher::new();
        for i in lo + 1..hi {
            let key = data[i];
            touch.read(ctx, elem_addr(base, i as u64, ELEM));
            let mut j = i;
            while j > lo && data[j - 1] > key {
                touch.read(ctx, elem_addr(base, (j - 1) as u64, ELEM));
                data[j] = data[j - 1];
                touch.write(ctx, elem_addr(base, j as u64, ELEM));
                j -= 1;
                ctx.compute(2);
            }
            data[j] = key;
            touch.write(ctx, elem_addr(base, j as u64, ELEM));
            ctx.compute(4);
        }
    }

    /// Real two-way merge of the sorted halves, through a temp buffer.
    fn merge(&mut self, ctx: &mut BatchCtx<'_>) {
        let (lo, hi) = (self.lo, self.hi);
        let mid = lo + (hi - lo) / 2;
        let bytes = ((hi - lo) as u64) * ELEM;
        let tmp_base = ctx.alloc(bytes, LINE);
        ctx.register_region(tmp_base, bytes);
        let base = self.shared.base;
        let mut data = self.shared.data.borrow_mut();
        let mut tmp: Vec<u64> = Vec::with_capacity(hi - lo);
        let mut touch = LineToucher::new();
        let (mut i, mut j) = (lo, mid);
        while i < mid || j < hi {
            let take_left = if i >= mid {
                false
            } else if j >= hi {
                true
            } else {
                touch.read(ctx, elem_addr(base, i as u64, ELEM));
                touch.read(ctx, elem_addr(base, j as u64, ELEM));
                data[i] <= data[j]
            };
            let v = if take_left {
                touch.read(ctx, elem_addr(base, i as u64, ELEM));
                i += 1;
                data[i - 1]
            } else {
                touch.read(ctx, elem_addr(base, j as u64, ELEM));
                j += 1;
                data[j - 1]
            };
            touch.write(ctx, elem_addr(tmp_base, tmp.len() as u64, ELEM));
            tmp.push(v);
            ctx.compute(3);
        }
        // Copy back.
        touch.reset();
        for (k, v) in tmp.into_iter().enumerate() {
            touch.read(ctx, elem_addr(tmp_base, k as u64, ELEM));
            data[lo + k] = v;
            touch.write(ctx, elem_addr(base, (lo + k) as u64, ELEM));
        }
        drop(data);
        ctx.free(tmp_base, bytes, LINE);
    }
}

impl Program for MergeThread {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        match self.phase {
            Phase::Start => {
                let bytes = ((self.hi - self.lo) as u64) * ELEM;
                ctx.register_region(self.addr(self.lo), bytes);
                if self.hi - self.lo <= self.cutoff {
                    self.insertion_sort(ctx);
                    return Control::Exit;
                }
                let mid = self.lo + (self.hi - self.lo) / 2;
                let left = ctx.spawn(Box::new(self.child(self.lo, mid)));
                let right = ctx.spawn(Box::new(self.child(mid, self.hi)));
                // The children's state is fully contained in the parent's
                // (paper Figure 2/3): at_share(child, parent, 1.0).
                let me = ctx.self_id();
                let _ = ctx.at_share(left, me, 1.0);
                let _ = ctx.at_share(right, me, 1.0);
                // Child regions (the parent knows the split).
                ctx.register_region_for(left, self.addr(self.lo), ((mid - self.lo) as u64) * ELEM);
                ctx.register_region_for(right, self.addr(mid), ((self.hi - mid) as u64) * ELEM);
                self.left = Some(left);
                self.right = Some(right);
                self.phase = Phase::JoinRight;
                Control::Join(left)
            }
            Phase::JoinRight => {
                self.phase = Phase::Merge;
                Control::Join(self.right.expect("right child exists"))
            }
            Phase::Merge => {
                self.merge(ctx);
                Control::Exit
            }
        }
    }

    fn name(&self) -> &str {
        "merge"
    }
}

/// Builds the shared array and spawns the root thread.
/// Returns `(shared, root thread id)`.
pub fn spawn_parallel<S: Scheduler>(
    engine: &mut Engine<S>,
    params: &MergeParams,
) -> (Rc<MergeShared>, ThreadId) {
    let bytes = (params.elements as u64) * ELEM;
    let base = engine.machine_mut().alloc(bytes, LINE);
    let shared = MergeShared::new(base, params);
    let root = engine.spawn(Box::new(MergeThread::root(shared.clone(), params)));
    (shared, root)
}

/// The Figure 5 *work thread*: merges two pre-sorted halves of the array,
/// yielding periodically so hooks can sample its growing footprint.
pub struct MergeWorker {
    shared: Rc<MergeShared>,
    tmp: Vec<u64>,
    tmp_base: Option<VAddr>,
    i: usize,
    j: usize,
    copied: usize,
    batch_accesses: u64,
}

impl MergeWorker {
    /// Creates the worker over an array whose halves are already sorted.
    pub fn new(shared: Rc<MergeShared>) -> Self {
        let n = shared.data.borrow().len();
        {
            let mut d = shared.data.borrow_mut();
            let mid = n / 2;
            d[..mid].sort_unstable();
            d[mid..].sort_unstable();
        }
        MergeWorker {
            shared,
            tmp: Vec::with_capacity(n),
            tmp_base: None,
            i: 0,
            j: n / 2,
            copied: 0,
            batch_accesses: 1024,
        }
    }
}

impl Program for MergeWorker {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        let n = self.shared.data.borrow().len();
        let mid = n / 2;
        let base = self.shared.base;
        let bytes = (n as u64) * ELEM;
        if self.tmp_base.is_none() {
            let t = ctx.alloc(bytes, LINE);
            ctx.register_region(t, bytes);
            ctx.register_region(base, bytes);
            self.tmp_base = Some(t);
        }
        let tmp_base = self.tmp_base.expect("allocated above");
        let mut touch = LineToucher::new();
        let mut budget = self.batch_accesses as i64;
        // Merge phase.
        while (self.i < mid || self.j < n) && budget > 0 {
            let data = self.shared.data.borrow();
            let take_left = if self.i >= mid {
                false
            } else if self.j >= n {
                true
            } else {
                touch.read(ctx, elem_addr(base, self.i as u64, ELEM));
                touch.read(ctx, elem_addr(base, self.j as u64, ELEM));
                budget -= 2;
                data[self.i] <= data[self.j]
            };
            let v = if take_left {
                self.i += 1;
                data[self.i - 1]
            } else {
                self.j += 1;
                data[self.j - 1]
            };
            drop(data);
            touch.write(ctx, elem_addr(tmp_base, self.tmp.len() as u64, ELEM));
            budget -= 1;
            self.tmp.push(v);
            ctx.compute(3);
        }
        if self.i >= mid && self.j >= n {
            // Copy-back phase.
            while self.copied < n && budget > 0 {
                let k = self.copied;
                touch.read(ctx, elem_addr(tmp_base, k as u64, ELEM));
                self.shared.data.borrow_mut()[k] = self.tmp[k];
                touch.write(ctx, elem_addr(base, k as u64, ELEM));
                budget -= 2;
                self.copied += 1;
                ctx.compute(2);
            }
            if self.copied >= n {
                return Control::Exit;
            }
        }
        Control::Yield
    }

    fn name(&self) -> &str {
        "merge-worker"
    }
}

/// Spawns the Figure 5 monitored work thread.
pub fn spawn_single<S: Scheduler>(engine: &mut Engine<S>, params: &MergeParams) -> ThreadId {
    let bytes = (params.elements as u64) * ELEM;
    let base = engine.machine_mut().alloc(bytes, LINE);
    let shared = MergeShared::new(base, params);
    engine.spawn(Box::new(MergeWorker::new(shared)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_threads::{EngineConfig, SchedPolicy};
    use locality_sim::MachineConfig;

    fn run(policy: SchedPolicy, params: &MergeParams) -> (active_threads::RunReport, bool) {
        let mut e =
            active_threads::Engine::new(MachineConfig::ultra1(), policy, EngineConfig::default())
                .unwrap();
        let (shared, _root) = spawn_parallel(&mut e, params);
        let report = e.run().unwrap();
        (report, shared.is_sorted())
    }

    #[test]
    fn parallel_sort_actually_sorts() {
        let (report, sorted) = run(SchedPolicy::Fcfs, &MergeParams::small());
        assert!(sorted, "the array must end up sorted");
        // 2000 elements / cutoff 50 -> 64 leaves -> 127 threads.
        assert!(report.threads_completed >= 63, "threads: {}", report.threads_completed);
    }

    #[test]
    fn sorts_under_every_policy() {
        for policy in [SchedPolicy::Lff, SchedPolicy::Crt, SchedPolicy::LffNoAnnotations] {
            let (_, sorted) = run(policy, &MergeParams::small());
            assert!(sorted, "policy {policy:?} broke the sort");
        }
    }

    #[test]
    fn locality_policy_reduces_misses_at_scale() {
        // Large enough that the array exceeds the 512 KiB cache: FCFS's
        // breadth-first wake order then washes the cache at every merge
        // level, while the locality policies dispatch a parent right
        // after its second child exits (its halves still cached).
        let params = MergeParams { elements: 120_000, cutoff: 100, seed: 7 };
        let (fcfs, s1) = run(SchedPolicy::Fcfs, &params);
        let (lff, s2) = run(SchedPolicy::Lff, &params);
        assert!(s1 && s2);
        let eliminated = lff.misses_eliminated_vs(&fcfs);
        assert!(
            eliminated > 0.10,
            "expected noticeable miss elimination, got {:.1}%",
            eliminated * 100.0
        );
    }

    #[test]
    fn single_worker_merges() {
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Fcfs,
            EngineConfig::default(),
        )
        .unwrap();
        let tid = spawn_single(&mut e, &MergeParams::small());
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 1);
        assert!(report.context_switches > 3, "worker must yield for sampling");
        let _ = tid;
    }

    #[test]
    fn annotations_present_in_graph() {
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Lff,
            EngineConfig::default(),
        )
        .unwrap();
        let params = MergeParams::small();
        let (_, root) = spawn_parallel(&mut e, &params);
        // Run a few steps... simplest: run to completion, then the graph
        // is empty again (threads exited). Instead check determinism of
        // completion and that the root joined both children.
        let report = e.run().unwrap();
        assert!(e.graph().is_empty(), "exited threads must leave the graph");
        assert!(report.threads_completed >= 3);
        let _ = root;
    }
}
