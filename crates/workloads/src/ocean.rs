//! *ocean*: a regular-grid red-black successive-over-relaxation solver,
//! standing in for SPLASH-2's ocean simulation kernel (paper §3.3).
//!
//! The work thread sweeps a large `f64` grid with a 5-point stencil —
//! long sequential runs and maximal clustering of references, the regime
//! where the paper observes the model to slightly over-predict footprints
//! for C-style codes (the independence-of-references assumption is most
//! strained by streaming sweeps).

use crate::common::{rng, LINE};
use active_threads::{BatchCtx, Control, Engine, Program, Scheduler, ThreadId};
use locality_sim::VAddr;
use rand::Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// Parameters of an ocean run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OceanParams {
    /// Grid side (cells); the grid is `side × side` of `f64`.
    pub side: usize,
    /// Red-black SOR sweeps.
    pub sweeps: u32,
    /// Relaxation factor.
    pub omega: f64,
    /// Rows per batch.
    pub rows_per_batch: usize,
    /// RNG seed for the initial field.
    pub seed: u64,
}

impl Default for OceanParams {
    fn default() -> Self {
        OceanParams { side: 512, sweeps: 3, omega: 1.5, rows_per_batch: 8, seed: 9 }
    }
}

impl OceanParams {
    /// A scaled-down variant for fast tests.
    pub fn small() -> Self {
        OceanParams { side: 64, sweeps: 2, omega: 1.5, rows_per_batch: 8, seed: 9 }
    }
}

/// The grid.
#[derive(Debug)]
pub struct OceanGrid {
    grid: RefCell<Vec<f64>>,
    base: VAddr,
    side: usize,
}

impl OceanGrid {
    /// Builds a random initial field with fixed boundary values.
    pub fn new(base: VAddr, params: &OceanParams) -> Rc<Self> {
        let mut r = rng(params.seed);
        let n = params.side;
        let grid = (0..n * n).map(|_| r.gen::<f64>()).collect();
        Rc::new(OceanGrid { grid: RefCell::new(grid), base, side: n })
    }

    fn addr(&self, row: usize, col: usize) -> VAddr {
        self.base.offset(((row * self.side + col) * 8) as u64)
    }

    /// Residual of the interior (test oracle: SOR must reduce it).
    pub fn residual(&self) -> f64 {
        let g = self.grid.borrow();
        let n = self.side;
        let mut sum = 0.0;
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let r =
                    g[(i - 1) * n + j] + g[(i + 1) * n + j] + g[i * n + j - 1] + g[i * n + j + 1]
                        - 4.0 * g[i * n + j];
                sum += r * r;
            }
        }
        sum.sqrt()
    }
}

/// The monitored SOR work thread.
pub struct OceanWorker {
    grid: Rc<OceanGrid>,
    params: OceanParams,
    sweep: u32,
    /// 0 = red pass, 1 = black pass of the current sweep.
    color: usize,
    row: usize,
}

impl OceanWorker {
    fn relax_row(&self, ctx: &mut BatchCtx<'_>, i: usize) {
        let n = self.grid.side;
        let omega = self.params.omega;
        let mut g = self.grid.grid.borrow_mut();
        // Line-granular touches: the row itself (read+write) and the rows
        // above and below (reads). 8 f64 per 64-byte line.
        let row_bytes = (n * 8) as u64;
        ctx.read_range(self.grid.addr(i - 1, 0), row_bytes, LINE);
        ctx.read_range(self.grid.addr(i + 1, 0), row_bytes, LINE);
        ctx.read_range(self.grid.addr(i, 0), row_bytes, LINE);
        let start = 1 + (i + self.color) % 2;
        for j in (start..n - 1).step_by(2) {
            let stencil =
                g[(i - 1) * n + j] + g[(i + 1) * n + j] + g[i * n + j - 1] + g[i * n + j + 1];
            let old = g[i * n + j];
            g[i * n + j] = old + omega * (stencil / 4.0 - old);
        }
        ctx.write_range(self.grid.addr(i, 0), row_bytes, LINE);
        ctx.compute((n as u64) * 6 / 2);
    }
}

impl Program for OceanWorker {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        let n = self.grid.side;
        if self.sweep == 0 && self.color == 0 && self.row <= 1 {
            ctx.register_region(self.grid.base, (n * n * 8) as u64);
            self.row = 1;
        }
        for _ in 0..self.params.rows_per_batch {
            if self.row >= n - 1 {
                self.row = 1;
                if self.color == 0 {
                    self.color = 1;
                } else {
                    self.color = 0;
                    self.sweep += 1;
                    if self.sweep >= self.params.sweeps {
                        return Control::Exit;
                    }
                }
            }
            self.relax_row(ctx, self.row);
            self.row += 1;
        }
        Control::Yield
    }

    fn name(&self) -> &str {
        "ocean"
    }
}

/// Spawns the monitored single work thread.
pub fn spawn_single<S: Scheduler>(engine: &mut Engine<S>, params: &OceanParams) -> ThreadId {
    let bytes = (params.side * params.side * 8) as u64;
    let base = engine.machine_mut().alloc(bytes, LINE);
    let grid = OceanGrid::new(base, params);
    engine.spawn(Box::new(OceanWorker { grid, params: *params, sweep: 0, color: 0, row: 1 }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_threads::{EngineConfig, SchedPolicy};
    use locality_sim::MachineConfig;

    #[test]
    fn sor_reduces_residual() {
        let params = OceanParams::small();
        let base = VAddr(0x10000);
        let grid = OceanGrid::new(base, &params);
        let before = grid.residual();
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Fcfs,
            EngineConfig::default(),
        )
        .unwrap();
        e.spawn(Box::new(OceanWorker { grid: grid.clone(), params, sweep: 0, color: 0, row: 1 }));
        e.run().unwrap();
        let after = grid.residual();
        assert!(after < before * 0.7, "SOR must relax: {before} -> {after}");
    }

    #[test]
    fn sequential_sweep_traffic() {
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Fcfs,
            EngineConfig::default(),
        )
        .unwrap();
        let params = OceanParams::small();
        spawn_single(&mut e, &params);
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 1);
        // The 64x64 grid is 32 KiB = 512 lines; at least that many
        // compulsory misses.
        assert!(report.total_l2_misses >= 512);
        assert!(report.context_switches > 5);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut e = active_threads::Engine::new(
                MachineConfig::ultra1(),
                SchedPolicy::Fcfs,
                EngineConfig::default(),
            )
            .unwrap();
            spawn_single(&mut e, &OceanParams::small());
            e.run().unwrap()
        };
        assert_eq!(run(), run());
    }
}
