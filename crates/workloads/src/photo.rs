//! *photo*: a softening filter over an RGB pixmap (paper Table 2 / §5):
//! "a separate thread is created to retouch each row of pixels. During
//! the course of computation, a thread accesses the states of several
//! neighbor rows. The annotations indicate that the closer the
//! corresponding row numbers, the more prefetched state is reused."
//!
//! The filter is a separable softening blend,
//! `out = (1−α)·in + α·vblur(hblur(in))`, with a *causal* vertical
//! window (rows `y−2r..y`), computed for real (checksummed in tests).
//! Each row thread runs in several scheduling intervals:
//!
//! 1. **H pass** — read its input row, horizontal box blur into its temp
//!    row, then post its row semaphore (once per dependent row below);
//! 2. **V pass** — wait for the semaphores of the window rows above,
//!    read their temp rows, re-read its own input row, blend, write the
//!    output row.
//!
//! The dependency structure is the real one for a causal separable
//! filter: producer/consumer semaphores, not a global barrier — so a
//! thread's V pass typically runs soon after its own H pass. It then
//! re-reads state the thread itself just produced, which is why even the
//! *counters-only* locality policies (no annotations) win by resuming
//! the thread where its temp and input rows are cached; the `at_share`
//! annotations additionally describe the neighbour-row overlap, which is
//! what groups adjacent rows onto one processor.

use crate::common::{rng, LINE};
use active_threads::{BatchCtx, Control, Engine, Program, Scheduler, SemId, ThreadId};
use locality_sim::VAddr;
use rand::Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// Parameters of a photo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhotoParams {
    /// Image width in pixels (paper: 2048).
    pub width: usize,
    /// Image height in pixels = number of row threads (paper: 2048).
    pub height: usize,
    /// Softening-filter radius in pixels (2 = a 5-wide box each way).
    pub filter_radius: usize,
    /// Annotation radius: rows within this distance get `at_share` edges.
    pub share_radius: usize,
    /// Seed for the synthetic input image.
    pub seed: u64,
}

impl Default for PhotoParams {
    fn default() -> Self {
        PhotoParams { width: 2048, height: 2048, filter_radius: 2, share_radius: 4, seed: 5 }
    }
}

impl PhotoParams {
    /// A scaled-down variant for fast tests.
    pub fn small() -> Self {
        PhotoParams { width: 256, height: 64, filter_radius: 2, share_radius: 4, seed: 5 }
    }

    /// Bytes per RGB row.
    pub fn row_bytes(&self) -> u64 {
        (self.width as u64) * 3
    }
}

/// Blend weight of the blurred component (fixed-point /256).
const ALPHA_NUM: u32 = 160;

/// The image buffers shared by all row threads.
#[derive(Debug)]
pub struct PhotoShared {
    /// Input pixels, row-major RGB.
    pub input: RefCell<Vec<u8>>,
    /// Horizontal-blur intermediate.
    pub temp: RefCell<Vec<u8>>,
    /// Output pixels.
    pub output: RefCell<Vec<u8>>,
    /// Simulated address of the input.
    pub in_base: VAddr,
    /// Simulated address of the intermediate.
    pub tmp_base: VAddr,
    /// Simulated address of the output.
    pub out_base: VAddr,
    /// Dimensions.
    pub params: PhotoParams,
}

impl PhotoShared {
    /// Builds the synthetic input image.
    pub fn new(in_base: VAddr, tmp_base: VAddr, out_base: VAddr, params: PhotoParams) -> Rc<Self> {
        let mut r = rng(params.seed);
        let n = params.width * params.height * 3;
        let input: Vec<u8> = (0..n).map(|_| r.gen()).collect();
        Rc::new(PhotoShared {
            input: RefCell::new(input),
            temp: RefCell::new(vec![0u8; n]),
            output: RefCell::new(vec![0u8; n]),
            in_base,
            tmp_base,
            out_base,
            params,
        })
    }

    fn row_addr(&self, base: VAddr, y: usize) -> VAddr {
        base.offset(y as u64 * self.params.row_bytes())
    }

    /// Horizontal box blur of row `y` into the temp buffer (real math).
    pub fn hblur_row(&self, y: usize) {
        let (w, r) = (self.params.width, self.params.filter_radius as i64);
        let input = self.input.borrow();
        let mut temp = self.temp.borrow_mut();
        for x in 0..w {
            for c in 0..3 {
                let mut sum = 0u32;
                let mut cnt = 0u32;
                for dx in -r..=r {
                    let nx = x as i64 + dx;
                    if nx >= 0 && nx < w as i64 {
                        sum += input[(y * w + nx as usize) * 3 + c] as u32;
                        cnt += 1;
                    }
                }
                temp[(y * w + x) * 3 + c] = (sum / cnt) as u8;
            }
        }
    }

    /// Causal vertical blur over the temp rows (window `y−2r..y`) plus
    /// the softening blend with the original row, into the output buffer.
    pub fn vblend_row(&self, y: usize) {
        let w = self.params.width;
        let r = self.params.filter_radius as i64;
        let input = self.input.borrow();
        let temp = self.temp.borrow();
        let mut output = self.output.borrow_mut();
        for x in 0..w {
            for c in 0..3 {
                let mut sum = 0u32;
                let mut cnt = 0u32;
                for dy in -2 * r..=0 {
                    let ny = y as i64 + dy;
                    if ny >= 0 {
                        sum += temp[(ny as usize * w + x) * 3 + c] as u32;
                        cnt += 1;
                    }
                }
                let blur = sum / cnt;
                let orig = input[(y * w + x) * 3 + c] as u32;
                let v = ((256 - ALPHA_NUM) * orig + ALPHA_NUM * blur) / 256;
                output[(y * w + x) * 3 + c] = v as u8;
            }
        }
    }

    /// Reference checksum of the whole output.
    pub fn output_checksum(&self) -> u64 {
        let out = self.output.borrow();
        out.iter().fold(0u64, |acc, &v| acc.wrapping_mul(131).wrapping_add(v as u64))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowPhase {
    /// The H pass itself.
    HPass,
    /// Posting this row's semaphore for each dependent row below.
    Post { left: usize },
    /// Waiting for the window rows above (their H passes).
    Wait { row_above: usize },
    /// The V pass.
    VPass,
}

/// One row thread: H pass, semaphore handshakes, V pass (module docs).
pub struct RowThread {
    shared: Rc<PhotoShared>,
    /// One semaphore per row, posted when that row's H pass is done.
    sems: Rc<Vec<SemId>>,
    y: usize,
    phase: RowPhase,
}

impl RowThread {
    fn window_lo(&self) -> usize {
        self.y.saturating_sub(2 * self.shared.params.filter_radius)
    }

    fn dependents_below(&self) -> usize {
        let p = self.shared.params;
        (p.height - 1 - self.y).min(2 * p.filter_radius)
    }
}

impl Program for RowThread {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        let shared = self.shared.clone();
        let p = shared.params;
        let row_bytes = p.row_bytes();
        let y = self.y;
        match self.phase {
            RowPhase::HPass => {
                // H pass: input row -> temp row.
                ctx.read_range(shared.row_addr(shared.in_base, y), row_bytes, LINE);
                shared.hblur_row(y);
                ctx.write_range(shared.row_addr(shared.tmp_base, y), row_bytes, LINE);
                ctx.compute((p.width as u64) * 3 * 3);
                self.phase = RowPhase::Post { left: self.dependents_below() };
                Control::Yield
            }
            RowPhase::Post { left } => {
                if left > 0 {
                    self.phase = RowPhase::Post { left: left - 1 };
                    return Control::SemPost(self.sems[y]);
                }
                self.phase = RowPhase::Wait { row_above: self.window_lo() };
                Control::Yield
            }
            RowPhase::Wait { row_above } => {
                if row_above < y {
                    self.phase = RowPhase::Wait { row_above: row_above + 1 };
                    return Control::SemWait(self.sems[row_above]);
                }
                self.phase = RowPhase::VPass;
                Control::Yield
            }
            RowPhase::VPass => {
                // V pass: window temp rows + own input row -> output.
                for ry in self.window_lo()..=y {
                    ctx.read_range(shared.row_addr(shared.tmp_base, ry), row_bytes, LINE);
                }
                ctx.read_range(shared.row_addr(shared.in_base, y), row_bytes, LINE);
                shared.vblend_row(y);
                ctx.write_range(shared.row_addr(shared.out_base, y), row_bytes, LINE);
                ctx.compute((p.width as u64) * 3 * 4);
                Control::Exit
            }
        }
    }

    fn name(&self) -> &str {
        "photo-row"
    }
}

/// Registers the ground-truth state regions of row thread `y`.
fn register_row_regions<S: Scheduler>(
    engine: &mut Engine<S>,
    tid: ThreadId,
    shared: &PhotoShared,
    y: usize,
) {
    let p = shared.params;
    let row_bytes = p.row_bytes();
    let lo = y.saturating_sub(2 * p.filter_radius);
    let m = engine.machine_mut();
    m.register_region(tid, shared.row_addr(shared.in_base, y), row_bytes);
    m.register_region(tid, shared.row_addr(shared.tmp_base, lo), ((y - lo + 1) as u64) * row_bytes);
    m.register_region(tid, shared.row_addr(shared.out_base, y), row_bytes);
}

/// Spawns one thread per row with neighbour-sharing annotations derived
/// from the exact region overlaps. Returns `(shared, tids)`.
pub fn spawn_parallel<S: Scheduler>(
    engine: &mut Engine<S>,
    params: &PhotoParams,
) -> (Rc<PhotoShared>, Vec<ThreadId>) {
    spawn_parallel_with(engine, params, true)
}

/// [`spawn_parallel`] with the `at_share` annotations optional — the
/// unannotated form is the "existing unmodified application" that the
/// paper's §7 runtime-inference future work targets.
pub fn spawn_parallel_with<S: Scheduler>(
    engine: &mut Engine<S>,
    params: &PhotoParams,
    annotate: bool,
) -> (Rc<PhotoShared>, Vec<ThreadId>) {
    let bytes = params.row_bytes() * params.height as u64;
    let in_base = engine.machine_mut().alloc(bytes, LINE);
    let tmp_base = engine.machine_mut().alloc(bytes, LINE);
    let out_base = engine.machine_mut().alloc(bytes, LINE);
    let shared = PhotoShared::new(in_base, tmp_base, out_base, *params);
    let sems: Rc<Vec<SemId>> =
        Rc::new((0..params.height).map(|_| engine.sync_tables_mut().create_semaphore(0)).collect());
    let mut tids = Vec::with_capacity(params.height);
    for y in 0..params.height {
        let tid = engine.spawn(Box::new(RowThread {
            shared: shared.clone(),
            sems: sems.clone(),
            y,
            phase: RowPhase::HPass,
        }));
        register_row_regions(engine, tid, &shared, y);
        tids.push(tid);
    }
    // Annotations: the closer the rows, the more state is shared; the
    // coefficients come from the exact region overlaps (what a fully
    // informed programmer would write).
    if annotate {
        for y in 0..params.height {
            for d in 1..=params.share_radius {
                if y + d < params.height {
                    let q = engine.machine().regions().coefficient(tids[y], tids[y + d]);
                    let q_rev = engine.machine().regions().coefficient(tids[y + d], tids[y]);
                    let _ = engine.annotate(tids[y], tids[y + d], q);
                    let _ = engine.annotate(tids[y + d], tids[y], q_rev);
                }
            }
        }
    }
    (shared, tids)
}

/// The Figure 5 monitored work thread: filters all rows by itself
/// (H pass then V pass per row), yielding between rows for sampling.
pub struct PhotoWorker {
    shared: Rc<PhotoShared>,
    next_row: usize,
    hblurred: usize,
}

impl Program for PhotoWorker {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        let p = self.shared.params;
        if self.next_row >= p.height {
            return Control::Exit;
        }
        let y = self.next_row;
        self.next_row += 1;
        let row_bytes = p.row_bytes();
        let lo = y.saturating_sub(2 * p.filter_radius);
        ctx.register_region(self.shared.row_addr(self.shared.in_base, y), row_bytes);
        ctx.register_region(
            self.shared.row_addr(self.shared.tmp_base, lo),
            ((y - lo + 1) as u64) * row_bytes,
        );
        ctx.register_region(self.shared.row_addr(self.shared.out_base, y), row_bytes);
        // H-blur the rows the causal window needs that are not done yet.
        while self.hblurred <= y {
            let ry = self.hblurred;
            ctx.read_range(self.shared.row_addr(self.shared.in_base, ry), row_bytes, LINE);
            self.shared.hblur_row(ry);
            ctx.write_range(self.shared.row_addr(self.shared.tmp_base, ry), row_bytes, LINE);
            self.hblurred += 1;
        }
        for ry in lo..=y {
            ctx.read_range(self.shared.row_addr(self.shared.tmp_base, ry), row_bytes, LINE);
        }
        ctx.read_range(self.shared.row_addr(self.shared.in_base, y), row_bytes, LINE);
        self.shared.vblend_row(y);
        ctx.write_range(self.shared.row_addr(self.shared.out_base, y), row_bytes, LINE);
        ctx.compute((p.width as u64) * 3 * 7);
        Control::Yield
    }

    fn name(&self) -> &str {
        "photo-worker"
    }
}

/// Spawns the monitored single worker.
pub fn spawn_single<S: Scheduler>(engine: &mut Engine<S>, params: &PhotoParams) -> ThreadId {
    let bytes = params.row_bytes() * params.height as u64;
    let in_base = engine.machine_mut().alloc(bytes, LINE);
    let tmp_base = engine.machine_mut().alloc(bytes, LINE);
    let out_base = engine.machine_mut().alloc(bytes, LINE);
    let shared = PhotoShared::new(in_base, tmp_base, out_base, *params);
    engine.spawn(Box::new(PhotoWorker { shared, next_row: 0, hblurred: 0 }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_threads::{EngineConfig, SchedPolicy};
    use locality_sim::MachineConfig;

    fn run(
        cpus: usize,
        policy: SchedPolicy,
        params: &PhotoParams,
    ) -> (active_threads::RunReport, u64) {
        let config =
            if cpus == 1 { MachineConfig::ultra1() } else { MachineConfig::enterprise5000(cpus) };
        let mut e = active_threads::Engine::new(config, policy, EngineConfig::default()).unwrap();
        let (shared, _) = spawn_parallel(&mut e, params);
        let report = e.run().unwrap();
        (report, shared.output_checksum())
    }

    #[test]
    fn filter_output_is_policy_independent() {
        let params = PhotoParams::small();
        let (_, sum_fcfs) = run(1, SchedPolicy::Fcfs, &params);
        let (_, sum_lff) = run(2, SchedPolicy::Lff, &params);
        let (_, sum_crt) = run(4, SchedPolicy::Crt, &params);
        assert_eq!(sum_fcfs, sum_lff);
        assert_eq!(sum_fcfs, sum_crt);
        assert_ne!(sum_fcfs, 0);
    }

    #[test]
    fn filter_matches_direct_computation() {
        let params = PhotoParams::small();
        let (_, sum) = run(1, SchedPolicy::Fcfs, &params);
        let shared = PhotoShared::new(VAddr(0x10000), VAddr(0x20000000), VAddr(0x40000000), params);
        for y in 0..params.height {
            shared.hblur_row(y);
        }
        for y in 0..params.height {
            shared.vblend_row(y);
        }
        assert_eq!(sum, shared.output_checksum());
    }

    #[test]
    fn softening_reduces_contrast() {
        // The blend must pull pixel values toward the local mean: the
        // output's total variation along x is smaller than the input's.
        let params = PhotoParams::small();
        let shared = PhotoShared::new(VAddr(0x10000), VAddr(0x20000000), VAddr(0x40000000), params);
        for y in 0..params.height {
            shared.hblur_row(y);
        }
        for y in 0..params.height {
            shared.vblend_row(y);
        }
        let tv = |buf: &[u8]| -> u64 {
            let w = params.width * 3;
            buf.chunks(w)
                .map(|row| {
                    row.windows(2).map(|p| (p[0] as i64 - p[1] as i64).unsigned_abs()).sum::<u64>()
                })
                .sum()
        };
        let tv_in = tv(&shared.input.borrow());
        let tv_out = tv(&shared.output.borrow());
        assert!(tv_out < tv_in / 2, "softening must smooth: {tv_in} -> {tv_out}");
    }

    #[test]
    fn neighbour_annotations_have_falling_coefficients() {
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Lff,
            EngineConfig::default(),
        )
        .unwrap();
        let (_, tids) = spawn_parallel(&mut e, &PhotoParams::small());
        let g = e.graph();
        let q1 = g.weight(tids[10], tids[11]);
        let q2 = g.weight(tids[10], tids[12]);
        let q4 = g.weight(tids[10], tids[14]);
        assert!(q1 > q2 && q2 > q4, "closer rows share more: {q1} {q2} {q4}");
        assert!(q4 > 0.0);
        assert!(g.weight(tids[10], tids[15]) == 0.0, "outside the radius");
    }

    #[test]
    fn smp_locality_policy_helps() {
        let params =
            PhotoParams { width: 1024, height: 128, filter_radius: 2, share_radius: 4, seed: 5 };
        let (fcfs, _) = run(8, SchedPolicy::Fcfs, &params);
        let (lff, _) = run(8, SchedPolicy::Lff, &params);
        let eliminated = lff.misses_eliminated_vs(&fcfs);
        assert!(
            eliminated > 0.2,
            "expected significant miss elimination on 8 cpus, got {:.1}%",
            eliminated * 100.0
        );
    }

    #[test]
    fn counters_alone_also_help_on_smp() {
        // The paper's §5 ablation: annotation-free LFF still recovers part
        // of the win through within-thread affinity (the V pass re-reads
        // the thread's own H-pass output).
        let params =
            PhotoParams { width: 1024, height: 128, filter_radius: 2, share_radius: 4, seed: 5 };
        let (fcfs, _) = run(8, SchedPolicy::Fcfs, &params);
        let (noann, _) = run(8, SchedPolicy::LffNoAnnotations, &params);
        let eliminated = noann.misses_eliminated_vs(&fcfs);
        assert!(
            eliminated > 0.05,
            "counters-only LFF should still eliminate misses, got {:.1}%",
            eliminated * 100.0
        );
    }

    #[test]
    fn single_worker_completes() {
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Fcfs,
            EngineConfig::default(),
        )
        .unwrap();
        spawn_single(&mut e, &PhotoParams::small());
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 1);
        assert!(report.context_switches as usize >= PhotoParams::small().height);
    }
}
