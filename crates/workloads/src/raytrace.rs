//! *raytrace*: a uniform-grid ray tracer (SPLASH-2's raytrace,
//! paper §3.3 and Figure 7).
//!
//! The paper singles raytrace out as anomalous: "In between short
//! bursts, the majority of misses are **conflict misses** that do not
//! significantly increase the footprint." This implementation reproduces
//! the mechanism honestly: the scene's voxel grid is sized to cover only
//! part of the direct-mapped E-cache, while per-ray scratch buffers are
//! deliberately allocated so their pages fall into the *same* cache bins
//! as the grid's hottest planes (a realistic accident of heap layout on
//! physically-indexed caches). Ray marching alternates voxel reads with
//! scratch writes, so the same sets ping-pong: miss counters climb while
//! the resident footprint barely moves — and the model, which only sees
//! miss counts, over-predicts (Figure 7, right).

use crate::common::{rng, LINE};
use active_threads::{BatchCtx, Control, Engine, Program, Scheduler, ThreadId};
use locality_sim::VAddr;
use rand::Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// Parameters of a raytrace run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaytraceParams {
    /// Voxel grid side (cells per axis).
    pub grid_side: usize,
    /// Number of spheres scattered in the scene.
    pub spheres: usize,
    /// Image side in pixels (rays = side²).
    pub image_side: usize,
    /// Rays traced per batch.
    pub rays_per_batch: usize,
    /// Sampling passes over the image (antialiasing samples per pixel).
    pub passes: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RaytraceParams {
    fn default() -> Self {
        RaytraceParams {
            grid_side: 32,
            spheres: 700,
            image_side: 128,
            rays_per_batch: 64,
            passes: 6,
            seed: 17,
        }
    }
}

impl RaytraceParams {
    /// A scaled-down variant for fast tests.
    pub fn small() -> Self {
        RaytraceParams {
            grid_side: 8,
            spheres: 32,
            image_side: 16,
            rays_per_batch: 32,
            passes: 2,
            seed: 17,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Sphere {
    center: [f64; 3],
    radius: f64,
}

/// The scene: spheres, a voxel acceleration grid, and the image.
#[derive(Debug)]
pub struct Scene {
    spheres: Vec<Sphere>,
    /// Per-voxel sphere index lists.
    voxels: Vec<Vec<u32>>,
    grid_side: usize,
    grid_base: VAddr,
    spheres_base: VAddr,
    image_base: VAddr,
    scratch_base: VAddr,
    /// Pixels written (hit mask packed as bits into a checksum).
    pub hits: RefCell<u64>,
}

impl Scene {
    fn voxel_idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.grid_side + y) * self.grid_side + x
    }

    fn voxel_addr(&self, idx: usize) -> VAddr {
        self.grid_base.offset(idx as u64 * LINE)
    }

    fn sphere_addr(&self, idx: usize) -> VAddr {
        self.spheres_base.offset(idx as u64 * LINE)
    }
}

/// Builds the scene and the deliberately-conflicting scratch region.
pub fn build_scene<S: Scheduler>(engine: &mut Engine<S>, params: &RaytraceParams) -> Rc<Scene> {
    let mut r = rng(params.seed);
    let n = params.grid_side;
    let spheres: Vec<Sphere> = (0..params.spheres)
        .map(|_| Sphere {
            center: [r.gen::<f64>(), r.gen::<f64>(), r.gen::<f64>()],
            radius: 0.02 + r.gen::<f64>() * 0.06,
        })
        .collect();
    let mut voxels = vec![Vec::new(); n * n * n];
    for (si, s) in spheres.iter().enumerate() {
        // Conservative rasterization of each sphere into the grid.
        let lo = |c: f64, rad: f64| (((c - rad) * n as f64).floor().max(0.0)) as usize;
        let hi = |c: f64, rad: f64| ((((c + rad) * n as f64).ceil()) as usize).min(n - 1);
        for z in lo(s.center[2], s.radius)..=hi(s.center[2], s.radius) {
            for y in lo(s.center[1], s.radius)..=hi(s.center[1], s.radius) {
                for x in lo(s.center[0], s.radius)..=hi(s.center[0], s.radius) {
                    voxels[(z * n + y) * n + x].push(si as u32);
                }
            }
        }
    }
    let grid_bytes = (n * n * n) as u64 * LINE;
    let grid_base = engine.machine_mut().alloc(grid_bytes, LINE);
    let spheres_base = engine.machine_mut().alloc(params.spheres as u64 * LINE, LINE);
    let image_bytes = (params.image_side * params.image_side * 4) as u64;
    let image_base = engine.machine_mut().alloc(image_bytes, LINE);
    // Scratch: allocated page-aligned right after the grid so that (with
    // bin-hopping fault order grid→scratch) its pages land in the bins
    // the grid's first planes occupy — the conflict accident.
    let page = engine.machine().config().page_bytes;
    let scratch_base = engine.machine_mut().alloc(page * 16, page);
    Rc::new(Scene {
        spheres,
        voxels,
        grid_side: n,
        grid_base,
        spheres_base,
        image_base,
        scratch_base,
        hits: RefCell::new(0),
    })
}

/// The monitored ray-tracing work thread.
pub struct RayWorker {
    scene: Rc<Scene>,
    params: RaytraceParams,
    next_ray: usize,
    pass: u32,
}

impl RayWorker {
    /// Traces one primary ray orthographically along +z, marching the
    /// voxel grid; returns whether anything was hit.
    fn trace(&self, ctx: &mut BatchCtx<'_>, px: usize, py: usize) -> bool {
        let scene = &self.scene;
        let n = scene.grid_side;
        let side = self.params.image_side as f64;
        let (ox, oy) = ((px as f64 + 0.5) / side, (py as f64 + 0.5) / side);
        let (vx, vy) =
            (((ox * n as f64) as usize).min(n - 1), ((oy * n as f64) as usize).min(n - 1));
        let mut best: Option<f64> = None;
        let page = 8192u64;
        for vz in 0..n {
            let vidx = scene.voxel_idx(vx, vy, vz);
            ctx.read(scene.voxel_addr(vidx));
            // Per-step scratch bookkeeping (ray state, mailboxing): the
            // conflicting region — one write per voxel step.
            ctx.write(scene.scratch_base.offset((vz as u64 * 2048) % (page * 16)));
            ctx.compute(12);
            for &si in &scene.voxels[vidx] {
                ctx.read(scene.sphere_addr(si as usize));
                let s = scene.spheres[si as usize];
                // Real orthographic ray/sphere intersection.
                let (dx, dy) = (ox - s.center[0], oy - s.center[1]);
                let d2 = dx * dx + dy * dy;
                ctx.compute(10);
                if d2 <= s.radius * s.radius {
                    let dz = (s.radius * s.radius - d2).sqrt();
                    let t = s.center[2] - dz;
                    if best.is_none_or(|b| t < b) {
                        best = Some(t);
                    }
                }
            }
            if best.is_some() {
                break;
            }
        }
        let pixel = py * self.params.image_side + px;
        ctx.write(scene.image_base.offset((pixel * 4) as u64));
        best.is_some()
    }
}

impl Program for RayWorker {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        let scene = &self.scene;
        let n = scene.grid_side;
        if self.next_ray == 0 && self.pass == 0 {
            ctx.register_region(scene.grid_base, (n * n * n) as u64 * LINE);
            ctx.register_region(scene.spheres_base, self.params.spheres as u64 * LINE);
            let image_bytes = (self.params.image_side * self.params.image_side * 4) as u64;
            ctx.register_region(scene.image_base, image_bytes);
            ctx.register_region(scene.scratch_base, 8192 * 16);
        }
        let total = self.params.image_side * self.params.image_side;
        let end = (self.next_ray + self.params.rays_per_batch).min(total);
        let mut hits = *scene.hits.borrow();
        for ray in self.next_ray..end {
            let (px, py) = (ray % self.params.image_side, ray / self.params.image_side);
            if self.trace(ctx, px, py) {
                hits = hits.wrapping_mul(31).wrapping_add(ray as u64);
            }
        }
        *scene.hits.borrow_mut() = hits;
        self.next_ray = end;
        if self.next_ray >= total {
            // Next antialiasing pass: the grid is warm now, but every
            // scratch write keeps evicting the grid lines that share its
            // sets — the conflict misses of the paper's Figure 7.
            self.next_ray = 0;
            self.pass += 1;
            if self.pass >= self.params.passes {
                return Control::Exit;
            }
        }
        Control::Yield
    }

    fn name(&self) -> &str {
        "raytrace"
    }
}

/// Spawns the monitored single work thread.
pub fn spawn_single<S: Scheduler>(engine: &mut Engine<S>, params: &RaytraceParams) -> ThreadId {
    let scene = build_scene(engine, params);
    engine.spawn(Box::new(RayWorker { scene, params: *params, next_ray: 0, pass: 0 }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_threads::{EngineConfig, SchedPolicy};
    use locality_sim::MachineConfig;

    fn run(params: &RaytraceParams) -> (active_threads::RunReport, u64) {
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Fcfs,
            EngineConfig::default(),
        )
        .unwrap();
        let scene = build_scene(&mut e, params);
        e.spawn(Box::new(RayWorker {
            scene: scene.clone(),
            params: *params,
            next_ray: 0,
            pass: 0,
        }));
        let report = e.run().unwrap();
        let hits = *scene.hits.borrow();
        (report, hits)
    }

    #[test]
    fn rays_hit_spheres() {
        let (report, hits) = run(&RaytraceParams::small());
        assert_eq!(report.threads_completed, 1);
        assert_ne!(hits, 0, "a scene of 32 spheres must be hit by some ray");
    }

    #[test]
    fn spheres_rasterized_into_voxels() {
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Fcfs,
            EngineConfig::default(),
        )
        .unwrap();
        let scene = build_scene(&mut e, &RaytraceParams::small());
        let populated = scene.voxels.iter().filter(|v| !v.is_empty()).count();
        assert!(populated > 0);
    }

    #[test]
    fn deterministic() {
        let a = run(&RaytraceParams::small());
        let b = run(&RaytraceParams::small());
        assert_eq!(a, b);
    }
}
