//! The *tasks* benchmark (paper §5, after Squillante & Lazowska):
//! a fixed number of identical threads with equal-sized **disjoint**
//! footprints that repeatedly wake up, touch their whole state, and block
//! for the same duration they were active.
//!
//! Because the states are disjoint, `at_share` annotations are irrelevant
//! here (paper: "user annotations are not relevant in this case"); all
//! locality benefit comes from the counter-driven footprint model alone.

use crate::common::LINE;
use active_threads::{BatchCtx, Control, Engine, Program, Scheduler, ThreadId};
use locality_sim::VAddr;

/// Parameters of a `tasks` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TasksParams {
    /// Number of identical tasks (paper: 1024).
    pub tasks: usize,
    /// Footprint of each task in cache lines (paper: 100).
    pub footprint_lines: u64,
    /// Scheduling periods per task (paper: 100).
    pub periods: u32,
    /// Fraction of each task's state shared with its successor (paper:
    /// 0 — disjoint; non-zero values build the overlapped variant used
    /// by the sharing-inference ablation).
    pub overlap: f64,
}

impl Default for TasksParams {
    fn default() -> Self {
        TasksParams { tasks: 1024, footprint_lines: 100, periods: 100, overlap: 0.0 }
    }
}

impl TasksParams {
    /// A scaled-down variant for fast tests.
    pub fn small() -> Self {
        TasksParams { tasks: 32, footprint_lines: 50, periods: 10, overlap: 0.0 }
    }
}

/// One task: touch the whole state, then sleep for as long as the touch
/// took, `periods` times.
#[derive(Debug)]
struct Task {
    region: VAddr,
    bytes: u64,
    periods_left: u32,
}

impl Program for Task {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        ctx.register_region(self.region, self.bytes);
        ctx.read_range(self.region, self.bytes, LINE);
        // A little computation per line, like a real periodic task.
        ctx.compute(self.bytes / LINE * 4);
        self.periods_left -= 1;
        if self.periods_left == 0 {
            Control::Exit
        } else {
            // Block for the same duration the task was active (paper).
            Control::Sleep(ctx.batch_cycles())
        }
    }

    fn name(&self) -> &str {
        "task"
    }
}

/// Allocates per-task state (disjoint, or overlapped per
/// [`TasksParams::overlap`]) and spawns all tasks. Returns the thread
/// ids in creation order.
pub fn spawn_parallel<S: Scheduler>(engine: &mut Engine<S>, params: &TasksParams) -> Vec<ThreadId> {
    spawn_parallel_with(engine, params, true)
}

/// [`spawn_parallel`] with optional `at_share` annotations (only
/// meaningful when `overlap > 0`; disjoint tasks have nothing to
/// annotate, as in the paper).
pub fn spawn_parallel_with<S: Scheduler>(
    engine: &mut Engine<S>,
    params: &TasksParams,
    annotate: bool,
) -> Vec<ThreadId> {
    let bytes = params.footprint_lines * LINE;
    let overlap = params.overlap.clamp(0.0, 0.9);
    let stride_lines = ((params.footprint_lines as f64) * (1.0 - overlap)).round().max(1.0) as u64;
    let mut tids = Vec::with_capacity(params.tasks);
    if overlap == 0.0 {
        for _ in 0..params.tasks {
            let region = engine.machine_mut().alloc(bytes, LINE);
            tids.push(engine.spawn(Box::new(Task { region, bytes, periods_left: params.periods })));
        }
        return tids;
    }
    // Overlapped: one arena, regions at a sub-footprint stride.
    let arena_bytes = stride_lines * LINE * (params.tasks as u64 - 1) + bytes;
    let arena = engine.machine_mut().alloc(arena_bytes, LINE);
    for i in 0..params.tasks {
        let region = arena.offset(i as u64 * stride_lines * LINE);
        let tid = engine.spawn(Box::new(Task { region, bytes, periods_left: params.periods }));
        engine.machine_mut().register_region(tid, region, bytes);
        tids.push(tid);
    }
    if annotate {
        for i in 0..params.tasks.saturating_sub(1) {
            let q = engine.machine().regions().coefficient(tids[i], tids[i + 1]);
            let q_rev = engine.machine().regions().coefficient(tids[i + 1], tids[i]);
            let _ = engine.annotate(tids[i], tids[i + 1], q);
            let _ = engine.annotate(tids[i + 1], tids[i], q_rev);
        }
    }
    tids
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_threads::{EngineConfig, SchedPolicy};
    use locality_sim::MachineConfig;

    fn run(policy: SchedPolicy, params: &TasksParams) -> active_threads::RunReport {
        let mut e =
            active_threads::Engine::new(MachineConfig::ultra1(), policy, EngineConfig::default())
                .unwrap();
        spawn_parallel(&mut e, params);
        e.run().unwrap()
    }

    #[test]
    fn all_tasks_complete() {
        let report = run(SchedPolicy::Fcfs, &TasksParams::small());
        assert_eq!(report.threads_completed, 32);
        // 32 tasks × 50 lines compulsory misses at minimum.
        assert!(report.total_l2_misses >= 32 * 50);
    }

    #[test]
    fn lff_eliminates_misses_when_oversubscribed() {
        // Enough tasks that FCFS round-robin destroys all reuse: the
        // aggregate state (300 × 100 lines) is ~4x the 8192-line cache.
        let params = TasksParams { tasks: 300, footprint_lines: 100, periods: 12, overlap: 0.0 };
        let fcfs = run(SchedPolicy::Fcfs, &params);
        let lff = run(SchedPolicy::Lff, &params);
        assert_eq!(lff.threads_completed, 300);
        let eliminated = lff.misses_eliminated_vs(&fcfs);
        assert!(
            eliminated > 0.3,
            "LFF should eliminate a large share of misses, got {:.1}%",
            eliminated * 100.0
        );
        assert!(lff.speedup_over(&fcfs) > 1.05, "speedup {:.2}", lff.speedup_over(&fcfs));
    }

    #[test]
    fn overlapped_variant_shares_state() {
        let params = TasksParams { tasks: 8, footprint_lines: 64, periods: 2, overlap: 0.5 };
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Lff,
            EngineConfig::default(),
        )
        .unwrap();
        let tids = spawn_parallel(&mut e, &params);
        let q = e.graph().weight(tids[0], tids[1]);
        assert!((q - 0.5).abs() < 0.05, "expected ~0.5 overlap, got {q}");
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 8);
    }

    #[test]
    fn deterministic_across_runs() {
        let params = TasksParams::small();
        let a = run(SchedPolicy::Crt, &params);
        let b = run(SchedPolicy::Crt, &params);
        assert_eq!(a, b);
    }
}
