//! *tsp*: branch-and-bound travelling salesman (paper §5).
//!
//! "The solution space is repeatedly divided into two subspaces for the
//! solutions with a given edge and those without the edge. Solution
//! subspaces are represented as adjacency matrices. … The application is
//! irregular in nature and performs a significant fraction of time
//! accessing data."
//!
//! Each thread owns a *copy* of the reduced cost matrix (allocated from
//! the shared heap under a mutex, like the paper's lock-protected Solaris
//! allocator), performs a real row/column reduction to compute its lower
//! bound, and either completes a tour greedily or branches by spawning
//! two children with freshly-copied matrices. Parents therefore
//! *prefetch data for their children* (they write the copies), which the
//! annotations record — and, as in the paper, the tree shape is fixed by
//! a depth/budget rule rather than by the racy incumbent bound, so every
//! scheduling policy performs **equal work**. Each node carries its own
//! spawn budget, split between its children when it branches, so the set
//! of evaluated tours (not just their count) is independent of dispatch
//! order.

use crate::common::{rng, LineToucher, LINE};
use active_threads::{BatchCtx, Control, Engine, MutexId, Program, Scheduler, ThreadId};
use locality_sim::VAddr;
use rand::Rng;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Parameters of a tsp run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TspParams {
    /// Number of cities (paper: 100).
    pub cities: usize,
    /// Total thread budget (paper: "measured the execution of 1000
    /// threads").
    pub thread_budget: u32,
    /// Maximum branching depth.
    pub max_depth: u32,
    /// Seed for the city coordinates.
    pub seed: u64,
}

impl Default for TspParams {
    fn default() -> Self {
        TspParams { cities: 100, thread_budget: 1000, max_depth: 16, seed: 3 }
    }
}

impl TspParams {
    /// A scaled-down variant for fast tests.
    pub fn small() -> Self {
        TspParams { cities: 32, thread_budget: 30, max_depth: 6, seed: 3 }
    }

    /// Bytes of one cost matrix (u32 entries).
    pub fn matrix_bytes(&self) -> u64 {
        (self.cities * self.cities * 4) as u64
    }
}

const INF: u32 = u32::MAX / 4;

/// State shared by all tsp threads.
#[derive(Debug)]
pub struct TspShared {
    /// City-to-city distances (dense, row-major).
    pub dist: Vec<u32>,
    /// Number of cities.
    pub n: usize,
    /// Best tour cost found (updated under `best_mutex`).
    pub best: Cell<u64>,
    /// Tours completed (leaf evaluations).
    pub tours: Cell<u64>,
    /// Simulated address of the incumbent record.
    pub best_addr: VAddr,
    /// Remaining thread budget.
    pub budget: Cell<i64>,
    params: TspParams,
}

impl TspShared {
    /// Builds a random euclidean instance.
    pub fn new(best_addr: VAddr, params: &TspParams) -> Rc<Self> {
        let n = params.cities;
        let mut r = rng(params.seed);
        let coords: Vec<(f64, f64)> =
            (0..n).map(|_| (r.gen::<f64>() * 1000.0, r.gen::<f64>() * 1000.0)).collect();
        let mut dist = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    dist[i * n + j] = INF;
                } else {
                    let (dx, dy) = (coords[i].0 - coords[j].0, coords[i].1 - coords[j].1);
                    dist[i * n + j] = (dx * dx + dy * dy).sqrt() as u32;
                }
            }
        }
        Rc::new(TspShared {
            dist,
            n,
            best: Cell::new(u64::MAX),
            tours: Cell::new(0),
            best_addr,
            budget: Cell::new(params.thread_budget as i64),
            params: *params,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Reduce,
    AllocChildren,
    CopyAndSpawn,
    UpdateBest,
    Done,
}

/// One branch-and-bound task.
pub struct TspTask {
    shared: Rc<TspShared>,
    /// This task's private cost matrix (native values).
    matrix: RefCell<Vec<u32>>,
    /// Simulated address of the matrix.
    matrix_addr: VAddr,
    depth: u32,
    bound: u64,
    /// Threads this subtree may still spawn. Fixed at spawn time (the
    /// parent splits its own budget between its children), so the tree
    /// shape never depends on dispatch order.
    node_budget: i64,
    alloc_mutex: MutexId,
    best_mutex: MutexId,
    phase: Phase,
    child_addrs: [Option<VAddr>; 2],
    /// The branching edge chosen during reduction.
    branch_edge: Option<(usize, usize)>,
    tour_cost: u64,
}

impl TspTask {
    #[allow(clippy::too_many_arguments)]
    fn new(
        shared: Rc<TspShared>,
        matrix: Vec<u32>,
        matrix_addr: VAddr,
        depth: u32,
        bound: u64,
        node_budget: i64,
        alloc_mutex: MutexId,
        best_mutex: MutexId,
    ) -> Self {
        TspTask {
            shared,
            matrix: RefCell::new(matrix),
            matrix_addr,
            depth,
            bound,
            node_budget,
            alloc_mutex,
            best_mutex,
            phase: Phase::Reduce,
            child_addrs: [None, None],
            branch_edge: None,
            tour_cost: 0,
        }
    }

    /// Real row+column reduction; returns the reduction amount and the
    /// best branching edge (max-regret zero entry).
    fn reduce(&mut self, ctx: &mut BatchCtx<'_>) -> u64 {
        let n = self.shared.n;
        let mut m = self.matrix.borrow_mut();
        let mut total = 0u64;
        // Row reduction (read + write the whole matrix).
        self.touch_matrix_inner(ctx, false);
        for i in 0..n {
            let row_min = (0..n).map(|j| m[i * n + j]).min().unwrap_or(0);
            if row_min > 0 && row_min < INF {
                total += row_min as u64;
                for j in 0..n {
                    if m[i * n + j] < INF {
                        m[i * n + j] -= row_min;
                    }
                }
            }
        }
        // Column reduction.
        for j in 0..n {
            let col_min = (0..n).map(|i| m[i * n + j]).min().unwrap_or(0);
            if col_min > 0 && col_min < INF {
                total += col_min as u64;
                for i in 0..n {
                    if m[i * n + j] < INF {
                        m[i * n + j] -= col_min;
                    }
                }
            }
        }
        self.touch_matrix_inner(ctx, true);
        ctx.compute((n * n * 4) as u64);
        // Branching edge: the zero entry with the largest regret
        // (min alternative in its row + column), Little's rule.
        let mut best_edge = None;
        let mut best_regret = 0u64;
        for i in 0..n {
            for j in 0..n {
                if m[i * n + j] == 0 {
                    let row_alt =
                        (0..n).filter(|&k| k != j).map(|k| m[i * n + k]).min().unwrap_or(INF);
                    let col_alt =
                        (0..n).filter(|&k| k != i).map(|k| m[k * n + j]).min().unwrap_or(INF);
                    let regret = row_alt as u64 + col_alt as u64;
                    if best_edge.is_none() || regret > best_regret {
                        best_edge = Some((i, j));
                        best_regret = regret;
                    }
                }
            }
        }
        ctx.compute((n * n) as u64);
        self.branch_edge = best_edge;
        total
    }

    fn touch_matrix_inner(&self, ctx: &mut BatchCtx<'_>, write: bool) {
        let bytes = self.shared.params.matrix_bytes();
        if write {
            ctx.write_range(self.matrix_addr, bytes, LINE);
        } else {
            ctx.read_range(self.matrix_addr, bytes, LINE);
        }
    }

    /// Real greedy tour completion on the *original* distances (the
    /// reduced matrix guides, the true cost is reported).
    fn greedy_tour(&self, ctx: &mut BatchCtx<'_>) -> u64 {
        let n = self.shared.n;
        let dist = &self.shared.dist;
        let mut visited = vec![false; n];
        let start = self.depth as usize % n;
        let mut at = start;
        visited[at] = true;
        let mut cost = 0u64;
        let mut touch = LineToucher::new();
        for _ in 1..n {
            // Scan the current row of our matrix for the cheapest edge —
            // one batched run over the row's lines.
            touch.read_span(ctx, self.matrix_addr.offset((at * n * 4) as u64), (n * 4) as u64);
            let next = (0..n)
                .filter(|&j| !visited[j])
                .min_by_key(|&j| dist[at * n + j])
                .expect("unvisited city exists");
            cost += dist[at * n + next] as u64;
            visited[next] = true;
            at = next;
            ctx.compute(n as u64);
        }
        cost + dist[at * n + start] as u64
    }

    fn is_leaf(&self) -> bool {
        self.depth >= self.shared.params.max_depth
            || self.branch_edge.is_none()
            || self.node_budget < 2
    }
}

impl Program for TspTask {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        match self.phase {
            Phase::Reduce => {
                let bytes = self.shared.params.matrix_bytes();
                ctx.register_region(self.matrix_addr, bytes);
                let reduced = self.reduce(ctx);
                self.bound += reduced;
                if self.is_leaf() {
                    self.tour_cost = self.greedy_tour(ctx);
                    self.phase = Phase::UpdateBest;
                    return Control::Lock(self.best_mutex);
                }
                self.phase = Phase::AllocChildren;
                Control::Lock(self.alloc_mutex)
            }
            Phase::AllocChildren => {
                // The spawn decision was made from this node's own budget
                // share, so nothing needs re-checking under the lock — it
                // only serialises the allocator, like the paper's
                // lock-protected Solaris malloc. The shared cell just
                // keeps global accounting.
                let bytes = self.shared.params.matrix_bytes();
                self.child_addrs = [Some(ctx.alloc(bytes, LINE)), Some(ctx.alloc(bytes, LINE))];
                self.shared.budget.set(self.shared.budget.get() - 2);
                self.phase = Phase::CopyAndSpawn;
                Control::Unlock(self.alloc_mutex)
            }
            Phase::CopyAndSpawn => {
                let n = self.shared.n;
                let bytes = self.shared.params.matrix_bytes();
                let (bi, bj) = self.branch_edge.expect("branch edge chosen");
                // Child 0: edge (bi,bj) *included* — forbid the row/col
                // and the reverse edge. Child 1: edge *excluded*.
                let base = self.matrix.borrow().clone();
                let mut with_edge = base.clone();
                for k in 0..n {
                    with_edge[bi * n + k] = INF;
                    with_edge[k * n + bj] = INF;
                }
                with_edge[bj * n + bi] = INF;
                let mut without_edge = base;
                without_edge[bi * n + bj] = INF;

                // Split the remaining spawn budget between the subtrees:
                // the include-edge child (deeper, more promising) gets
                // the larger half of an odd remainder.
                let rem = self.node_budget - 2;
                let child_budget = [rem - rem / 2, rem / 2];

                let me = ctx.self_id();
                for (slot, (matrix, extra_bound)) in
                    [(0, (with_edge, 0u64)), (1, (without_edge, 0u64))]
                {
                    let addr = self.child_addrs[slot].expect("allocated");
                    // The parent writes the child's matrix: real prefetch.
                    ctx.read_range(self.matrix_addr, bytes, LINE);
                    ctx.write_range(addr, bytes, LINE);
                    let child = TspTask::new(
                        self.shared.clone(),
                        matrix,
                        addr,
                        self.depth + 1,
                        self.bound + extra_bound,
                        child_budget[slot],
                        self.alloc_mutex,
                        self.best_mutex,
                    );
                    let tid = ctx.spawn(Box::new(child));
                    ctx.register_region_for(tid, addr, bytes);
                    // Parent state now includes the copies it wrote.
                    ctx.register_region(addr, bytes);
                    // Annotations: the parent prefetched the child's whole
                    // matrix (q from the exact overlap), and the child's
                    // activity keeps a slice of the parent's state warm.
                    let q_fwd = ctx.machine().regions().coefficient(me, tid);
                    let q_rev = ctx.machine().regions().coefficient(tid, me);
                    let _ = ctx.at_share(me, tid, q_fwd);
                    let _ = ctx.at_share(tid, me, q_rev);
                }
                self.phase = Phase::Done;
                Control::Exit
            }
            Phase::UpdateBest => {
                // Holding the best mutex: record the tour.
                ctx.read(self.shared.best_addr);
                let cost = self.bound.max(self.tour_cost);
                if cost < self.shared.best.get() {
                    self.shared.best.set(cost);
                    ctx.write(self.shared.best_addr);
                }
                self.shared.tours.set(self.shared.tours.get() + 1);
                self.phase = Phase::Done;
                Control::Unlock(self.best_mutex)
            }
            Phase::Done => Control::Exit,
        }
    }

    fn name(&self) -> &str {
        "tsp"
    }
}

/// Sets up the instance and spawns the root task.
/// Returns `(shared, root id)`.
pub fn spawn_parallel<S: Scheduler>(
    engine: &mut Engine<S>,
    params: &TspParams,
) -> (Rc<TspShared>, ThreadId) {
    let best_addr = engine.machine_mut().alloc(64, LINE);
    let shared = TspShared::new(best_addr, params);
    let alloc_mutex = engine.sync_tables_mut().create_mutex();
    let best_mutex = engine.sync_tables_mut().create_mutex();
    let bytes = params.matrix_bytes();
    let root_matrix_addr = engine.machine_mut().alloc(bytes, LINE);
    // The root holds the full spawn budget (minus itself); it hands
    // shares down the tree as it branches.
    let root = TspTask::new(
        shared.clone(),
        shared.dist.clone(),
        root_matrix_addr,
        0,
        0,
        params.thread_budget as i64 - 1,
        alloc_mutex,
        best_mutex,
    );
    shared.budget.set(shared.budget.get() - 1);
    let tid = engine.spawn(Box::new(root));
    engine.machine_mut().register_region(tid, root_matrix_addr, bytes);
    (shared, tid)
}

/// The Figure 5 monitored work thread: a depth-first branch-and-bound
/// walk performed by a single thread — each round it reduces its current
/// matrix, evaluates a tour, then allocates and copies a child subspace
/// matrix (the real algorithm's allocation behaviour: most of its misses
/// are compulsory, on the freshly initialized subspaces).
pub struct TspWorker {
    shared: Rc<TspShared>,
    task: TspTask,
    rounds: u32,
}

impl Program for TspWorker {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        if self.rounds == 0 {
            return Control::Exit;
        }
        self.rounds -= 1;
        let bytes = self.shared.params.matrix_bytes();
        ctx.register_region(self.task.matrix_addr, bytes);
        let _ = self.task.reduce(ctx);
        let _ = self.task.greedy_tour(ctx);
        if self.rounds > 0 {
            // Descend: allocate the child subspace and copy the reduced
            // matrix into it (read parent, write child), like the
            // parallel tasks do.
            let child_addr = ctx.alloc(bytes, LINE);
            ctx.register_region(child_addr, bytes);
            ctx.read_range(self.task.matrix_addr, bytes, LINE);
            ctx.write_range(child_addr, bytes, LINE);
            if let Some((bi, bj)) = self.task.branch_edge {
                let n = self.shared.n;
                let mut m = self.task.matrix.borrow_mut();
                for k in 0..n {
                    m[bi * n + k] = INF;
                    m[k * n + bj] = INF;
                }
            }
            self.task.matrix_addr = child_addr;
            self.task.depth += 1;
        }
        Control::Yield
    }

    fn name(&self) -> &str {
        "tsp-worker"
    }
}

/// Spawns the monitored single worker.
pub fn spawn_single<S: Scheduler>(engine: &mut Engine<S>, params: &TspParams) -> ThreadId {
    let best_addr = engine.machine_mut().alloc(64, LINE);
    let shared = TspShared::new(best_addr, params);
    let alloc_mutex = engine.sync_tables_mut().create_mutex();
    let best_mutex = engine.sync_tables_mut().create_mutex();
    let bytes = params.matrix_bytes();
    let addr = engine.machine_mut().alloc(bytes, LINE);
    // The single worker never spawns, so its budget share is zero.
    let task =
        TspTask::new(shared.clone(), shared.dist.clone(), addr, 0, 0, 0, alloc_mutex, best_mutex);
    engine.spawn(Box::new(TspWorker { shared, task, rounds: 24 }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_threads::{EngineConfig, SchedPolicy};
    use locality_sim::MachineConfig;

    fn run(
        cpus: usize,
        policy: SchedPolicy,
        params: &TspParams,
    ) -> (active_threads::RunReport, u64, u64) {
        let config =
            if cpus == 1 { MachineConfig::ultra1() } else { MachineConfig::enterprise5000(cpus) };
        let mut e = active_threads::Engine::new(config, policy, EngineConfig::default()).unwrap();
        let (shared, _) = spawn_parallel(&mut e, params);
        let report = e.run().unwrap();
        (report, shared.best.get(), shared.tours.get())
    }

    #[test]
    fn finds_a_tour_and_respects_budget() {
        let params = TspParams::small();
        let (report, best, tours) = run(1, SchedPolicy::Fcfs, &params);
        assert!(best < u64::MAX, "some tour must be recorded");
        assert!(tours > 0);
        assert!(report.threads_completed <= params.thread_budget as u64 + 1);
        assert!(report.threads_completed > 5, "tree must branch");
    }

    #[test]
    fn equal_work_across_policies() {
        // The deterministic budget/depth rule must give every policy the
        // same number of threads and tours.
        let params = TspParams::small();
        let (r1, b1, t1) = run(1, SchedPolicy::Fcfs, &params);
        let (r2, b2, t2) = run(1, SchedPolicy::Lff, &params);
        assert_eq!(r1.threads_completed, r2.threads_completed);
        assert_eq!(t1, t2);
        assert_eq!(b1, b2, "same tours evaluated => same best");
    }

    #[test]
    fn greedy_tour_cost_is_sane() {
        // A tour visits every city once: its cost must be at least the
        // number of edges times the minimum distance.
        let params = TspParams::small();
        let (_, best, _) = run(1, SchedPolicy::Fcfs, &params);
        let shared = TspShared::new(VAddr(0x1000), &params);
        let min_d = shared.dist.iter().copied().filter(|&d| d > 0 && d < INF).min().unwrap() as u64;
        assert!(best >= min_d * params.cities as u64 / 2);
    }

    #[test]
    fn smp_run_completes_deterministically() {
        let params = TspParams::small();
        let (a, _, _) = run(4, SchedPolicy::Crt, &params);
        let (b, _, _) = run(4, SchedPolicy::Crt, &params);
        assert_eq!(a, b);
    }

    #[test]
    fn single_worker_runs() {
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Fcfs,
            EngineConfig::default(),
        )
        .unwrap();
        spawn_single(&mut e, &TspParams::small());
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 1);
        assert!(report.total_l2_misses > 0);
    }
}
