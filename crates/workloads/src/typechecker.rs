//! *typechecker*: the Sather compiler's typechecker pass (paper §3.3 and
//! Figure 7, left).
//!
//! The paper's description, reproduced here structurally: the thread's
//! working set is "the type graph including the subtyping information
//! for the entire compiled source tree" — brought into the cache in "a
//! very intensive burst of misses" when the thread unblocks. It then
//! "walks the abstract machine tree and performs semantic analysis for
//! each node with the help of the type graph. The abstract tree is
//! traversed in the order of creation, which causes long run lengths and
//! high clustering of cache references" — Agarwal et al.'s
//! *nonstationary* regime.
//!
//! The AST here is much larger than the cache and is streamed exactly
//! once in creation order: its nodes are *input*, not retained working
//! set — the thread's state (what an affinity scheduler could hope to
//! reuse) is the type graph. The performance counters, however, keep
//! counting the streaming misses, so the model's predicted footprint
//! keeps climbing long after the observed one has saturated: the paper's
//! over-estimation anomaly.

use crate::common::{rng, LINE};
use active_threads::{BatchCtx, Control, Engine, Program, Scheduler, ThreadId};
use locality_sim::VAddr;
use rand::Rng;
use std::rc::Rc;

/// Parameters of a typechecker run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypecheckerParams {
    /// Number of types in the type graph.
    pub types: usize,
    /// Number of AST nodes (streamed once, in creation order).
    pub ast_nodes: usize,
    /// AST nodes checked per batch.
    pub nodes_per_batch: usize,
    /// RNG seed for graph shape and node types.
    pub seed: u64,
}

impl Default for TypecheckerParams {
    fn default() -> Self {
        // ~4096 lines of type graph, an AST several times the cache.
        TypecheckerParams { types: 4096, ast_nodes: 60_000, nodes_per_batch: 256, seed: 77 }
    }
}

impl TypecheckerParams {
    /// A scaled-down variant for fast tests.
    pub fn small() -> Self {
        TypecheckerParams { types: 256, ast_nodes: 2_000, nodes_per_batch: 128, seed: 77 }
    }
}

/// One type: a supertype chain entry (the subtyping lattice is a forest
/// with random-depth chains, like real single-inheritance hierarchies).
#[derive(Debug, Clone, Copy)]
struct TypeNode {
    supertype: Option<u32>,
}

/// One AST node: an operation over a type.
#[derive(Debug, Clone, Copy)]
struct AstNode {
    ty: u32,
}

/// The compiler data structures.
#[derive(Debug)]
pub struct TypecheckerData {
    types: Vec<TypeNode>,
    ast: Vec<AstNode>,
    types_base: VAddr,
    ast_base: VAddr,
    /// Number of subtype checks that succeeded (test oracle).
    pub conformances: std::cell::Cell<u64>,
}

impl TypecheckerData {
    /// Builds the type graph and the AST.
    pub fn new(types_base: VAddr, ast_base: VAddr, params: &TypecheckerParams) -> Rc<Self> {
        let mut r = rng(params.seed);
        let types: Vec<TypeNode> = (0..params.types)
            .map(|i| TypeNode {
                supertype: if i == 0 || r.gen_bool(0.1) {
                    None // a root of the forest
                } else {
                    Some(r.gen_range(0..i) as u32)
                },
            })
            .collect();
        // AST nodes reference types with locality: consecutive nodes tend
        // to use related types (same source file / class).
        let mut cur_ty = 0u32;
        let ast: Vec<AstNode> = (0..params.ast_nodes)
            .map(|_| {
                if r.gen_bool(0.02) {
                    cur_ty = r.gen_range(0..params.types) as u32;
                }
                let ty = if r.gen_bool(0.7) { cur_ty } else { r.gen_range(0..params.types) as u32 };
                AstNode { ty }
            })
            .collect();
        Rc::new(TypecheckerData {
            types,
            ast,
            types_base,
            ast_base,
            conformances: std::cell::Cell::new(0),
        })
    }

    fn type_addr(&self, idx: u32) -> VAddr {
        self.types_base.offset(idx as u64 * LINE)
    }

    fn ast_addr(&self, idx: usize) -> VAddr {
        self.ast_base.offset(idx as u64 * LINE)
    }

    /// Real subtype query: walk the supertype chain.
    fn conforms(&self, ctx: &mut BatchCtx<'_>, mut ty: u32, ancestor: u32) -> bool {
        loop {
            ctx.read(self.type_addr(ty));
            ctx.compute(6);
            if ty == ancestor {
                return true;
            }
            match self.types[ty as usize].supertype {
                Some(s) => ty = s,
                None => return false,
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// The initial burst: resolve the whole type graph.
    ResolveGraph { next: usize },
    /// The nonstationary walk of the AST in creation order.
    CheckAst { next: usize },
}

/// The monitored typechecker thread.
pub struct TypecheckerWorker {
    data: Rc<TypecheckerData>,
    params: TypecheckerParams,
    phase: Phase,
}

impl Program for TypecheckerWorker {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        match self.phase {
            Phase::ResolveGraph { next } => {
                if next == 0 {
                    // The thread's *state* is the type graph; the AST is
                    // streamed-once input (see module docs).
                    ctx.register_region(self.data.types_base, self.params.types as u64 * LINE);
                }
                // Intensive burst: bring the whole graph in, resolving
                // every supertype link.
                let end = (next + 1024).min(self.params.types);
                for t in next..end {
                    ctx.read(self.data.type_addr(t as u32));
                    if let Some(s) = self.data.types[t].supertype {
                        ctx.read(self.data.type_addr(s));
                    }
                    ctx.compute(10);
                }
                self.phase = if end >= self.params.types {
                    Phase::CheckAst { next: 0 }
                } else {
                    Phase::ResolveGraph { next: end }
                };
                Control::Yield
            }
            Phase::CheckAst { next } => {
                let end = (next + self.params.nodes_per_batch).min(self.params.ast_nodes);
                let mut ok = self.data.conformances.get();
                for i in next..end {
                    // Creation-order traversal: long sequential runs.
                    ctx.read(self.data.ast_addr(i));
                    let node = self.data.ast[i];
                    // Semantic analysis: a conformance query against the
                    // node's type and one of the forest roots.
                    if self.data.conforms(ctx, node.ty, 0) {
                        ok += 1;
                    }
                    ctx.compute(24);
                }
                self.data.conformances.set(ok);
                if end >= self.params.ast_nodes {
                    Control::Exit
                } else {
                    self.phase = Phase::CheckAst { next: end };
                    Control::Yield
                }
            }
        }
    }

    fn name(&self) -> &str {
        "typechecker"
    }
}

/// Spawns the monitored single work thread.
pub fn spawn_single<S: Scheduler>(engine: &mut Engine<S>, params: &TypecheckerParams) -> ThreadId {
    let types_base = engine.machine_mut().alloc(params.types as u64 * LINE, LINE);
    let ast_base = engine.machine_mut().alloc(params.ast_nodes as u64 * LINE, LINE);
    let data = TypecheckerData::new(types_base, ast_base, params);
    engine.spawn(Box::new(TypecheckerWorker {
        data,
        params: *params,
        phase: Phase::ResolveGraph { next: 0 },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_threads::{EngineConfig, SchedPolicy};
    use locality_sim::MachineConfig;

    fn run(params: &TypecheckerParams) -> (active_threads::RunReport, u64) {
        let mut e = active_threads::Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Fcfs,
            EngineConfig::default(),
        )
        .unwrap();
        let types_base = e.machine_mut().alloc(params.types as u64 * LINE, LINE);
        let ast_base = e.machine_mut().alloc(params.ast_nodes as u64 * LINE, LINE);
        let data = TypecheckerData::new(types_base, ast_base, params);
        e.spawn(Box::new(TypecheckerWorker {
            data: data.clone(),
            params: *params,
            phase: Phase::ResolveGraph { next: 0 },
        }));
        let report = e.run().unwrap();
        (report, data.conformances.get())
    }

    #[test]
    fn checks_every_node() {
        let params = TypecheckerParams::small();
        let (report, conf) = run(&params);
        assert_eq!(report.threads_completed, 1);
        // Some nodes conform to root 0, but not all (forest has several
        // roots).
        assert!(conf > 0 && conf < params.ast_nodes as u64, "conformances: {conf}");
    }

    #[test]
    fn supertype_chains_are_acyclic() {
        let data =
            TypecheckerData::new(VAddr(0x10000), VAddr(0x4000000), &TypecheckerParams::small());
        for start in 0..data.types.len() {
            let mut t = start as u32;
            let mut hops = 0;
            while let Some(s) = data.types[t as usize].supertype {
                t = s;
                hops += 1;
                assert!(hops <= data.types.len(), "cycle detected from {start}");
            }
        }
    }

    #[test]
    fn streaming_ast_dominates_misses() {
        // The AST stream (2000 lines) must produce more misses than the
        // type graph burst (256 lines).
        let params = TypecheckerParams::small();
        let (report, _) = run(&params);
        assert!(
            report.total_l2_misses as usize > params.ast_nodes / 2,
            "misses {} should reflect the AST stream",
            report.total_l2_misses
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(&TypecheckerParams::small()), run(&TypecheckerParams::small()));
    }
}
