//! The random memory walk microbenchmark (paper §3.2, Figure 4).
//!
//! A walker thread touches uniformly-random cache lines of its region —
//! the reference pattern that *exactly* satisfies the model's
//! independence assumption, so observed footprints should match the
//! closed forms almost perfectly. Sleeper threads hold pre-established
//! footprints (optionally overlapping the walker's region by a chosen
//! fraction) and decay or grow while the walker runs.

use crate::common::{rng, LINE};
use active_threads::{BatchCtx, Control, Engine, Program, Scheduler, ThreadId};
use locality_sim::VAddr;
use rand::rngs::StdRng;
use rand::Rng;

/// Parameters of a random walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkParams {
    /// Size of the region walked, in bytes.
    pub region_bytes: u64,
    /// Accesses per batch (sampling granularity).
    pub batch_accesses: u64,
    /// Total accesses before exiting.
    pub total_accesses: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WalkParams {
    fn default() -> Self {
        // A region much larger than the 512 KiB E-cache: misses then land
        // (nearly) uniformly over the cache sets, the regime the model
        // assumes. (With a region of only ~2x the cache, untouched sets
        // receive misses disproportionately often and observed footprints
        // outgrow the closed form.)
        WalkParams {
            region_bytes: 8 * 1024 * 1024,
            batch_accesses: 512,
            total_accesses: 200_000,
            seed: 42,
        }
    }
}

/// The walker program.
#[derive(Debug)]
pub struct RandomWalk {
    region: Option<VAddr>,
    params: WalkParams,
    issued: u64,
    rng: StdRng,
}

impl RandomWalk {
    /// Creates a walker; memory is allocated on first run.
    pub fn new(params: WalkParams) -> Self {
        RandomWalk { region: None, rng: rng(params.seed), params, issued: 0 }
    }
}

impl Program for RandomWalk {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        let bytes = self.params.region_bytes;
        let region = *self.region.get_or_insert_with(|| ctx.alloc(bytes, LINE));
        ctx.register_region(region, bytes);
        let lines = bytes / LINE;
        let n = self.params.batch_accesses.min(self.params.total_accesses - self.issued);
        for _ in 0..n {
            let line = self.rng.gen_range(0..lines);
            ctx.read(region.offset(line * LINE));
        }
        self.issued += n;
        if self.issued >= self.params.total_accesses {
            Control::Exit
        } else {
            Control::Yield
        }
    }

    fn name(&self) -> &str {
        "walk"
    }
}

/// A sleeper: touches a prefix of its region once (establishing an
/// initial footprint), then sleeps until the experiment is over.
#[derive(Debug)]
pub struct Sleeper {
    region: VAddr,
    region_bytes: u64,
    prefill_bytes: u64,
    sleep_cycles: u64,
    phase: u8,
}

impl Sleeper {
    /// Creates a sleeper over a pre-allocated region.
    pub fn new(region: VAddr, region_bytes: u64, prefill_bytes: u64, sleep_cycles: u64) -> Self {
        Sleeper {
            region,
            region_bytes,
            prefill_bytes: prefill_bytes.min(region_bytes),
            sleep_cycles,
            phase: 0,
        }
    }
}

impl Program for Sleeper {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        match self.phase {
            0 => {
                self.phase = 1;
                ctx.register_region(self.region, self.region_bytes);
                ctx.read_range(self.region, self.prefill_bytes, LINE);
                Control::Sleep(self.sleep_cycles)
            }
            _ => Control::Exit,
        }
    }

    fn name(&self) -> &str {
        "sleeper"
    }
}

/// Spawns a single walker (convenience for tests/examples).
pub fn spawn_single<S: Scheduler>(engine: &mut Engine<S>, params: &WalkParams) -> ThreadId {
    engine.spawn(Box::new(RandomWalk::new(*params)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_threads::{EngineConfig, SchedPolicy};
    use locality_sim::MachineConfig;

    #[test]
    fn walker_fills_cache_toward_model_prediction() {
        let mut e =
            Engine::new(MachineConfig::ultra1(), SchedPolicy::Fcfs, EngineConfig::default())
                .unwrap();
        let params = WalkParams { total_accesses: 60_000, ..WalkParams::default() };
        let tid = spawn_single(&mut e, &params);
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 1);
        // Ground truth at exit is gone (regions dropped), but miss counts
        // must be substantial: a 1 MiB region walked 60k times from cold.
        assert!(report.total_l2_misses > 20_000, "misses: {}", report.total_l2_misses);
        let _ = tid;
    }

    #[test]
    fn walker_observed_matches_closed_form() {
        use locality_core::{FootprintModel, ModelParams};
        // Drive a shorter walk and compare the observed footprint with the
        // model at the end (single interval => closed form applies).
        let mut e =
            Engine::new(MachineConfig::ultra1(), SchedPolicy::Fcfs, EngineConfig::default())
                .unwrap();
        struct OneShot(RandomWalk);
        impl Program for OneShot {
            fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
                // Run the whole walk in one batch, then hold (sleep) so the
                // cache state survives for inspection.
                loop {
                    if let Control::Exit = self.0.next_batch(ctx) {
                        break;
                    }
                }
                Control::Exit
            }
        }
        let params = WalkParams { total_accesses: 8000, ..WalkParams::default() };
        let tid = e.spawn(Box::new(OneShot(RandomWalk::new(params))));

        // Observe at exit via a hook? Simpler: run, then re-derive from
        // the machine — but exit drops regions. Instead check against the
        // miss count before regions are dropped using a hook.
        use active_threads::{EngineHook, SwitchEvent};
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Sample {
            out: Rc<RefCell<(u64, u64)>>, // (misses, observed footprint)
            tid: locality_core::ThreadId,
        }
        impl EngineHook for Sample {
            fn on_context_switch(
                &mut self,
                ev: &SwitchEvent,
                view: &active_threads::events::EngineView<'_>,
            ) {
                if ev.tid == self.tid {
                    let fp = view.machine.l2_footprint_lines(ev.cpu, self.tid);
                    *self.out.borrow_mut() = (ev.delta.misses, fp);
                }
            }
        }
        let out = Rc::new(RefCell::new((0, 0)));
        e.add_hook(Box::new(Sample { out: out.clone(), tid }));
        e.run().unwrap();
        let (misses, observed) = *out.borrow();
        assert!(misses > 4000, "expected a churny walk, got {misses} misses");
        let model = FootprintModel::new(ModelParams::new(8192).unwrap());
        let predicted = model.expected_blocking(0.0, misses);
        let err = (observed as f64 - predicted).abs() / predicted;
        assert!(err < 0.05, "observed {observed} vs predicted {predicted:.0} ({misses} misses)");
    }

    #[test]
    fn sleeper_prefills_then_sleeps() {
        let mut e =
            Engine::new(MachineConfig::ultra1(), SchedPolicy::Fcfs, EngineConfig::default())
                .unwrap();
        let region = e.machine_mut().alloc(64 * 100, LINE);
        e.spawn(Box::new(Sleeper::new(region, 64 * 100, 64 * 100, 1_000_000)));
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 1);
        assert_eq!(report.total_l2_misses, 100);
        assert!(report.total_cycles >= 1_000_000, "slept through simulated time");
    }
}
