//! The paper's mergesort walkthrough (§2.3): spawn a real parallel
//! mergesort with `at_share` annotations and watch the annotation graph
//! and the scheduling policies at work.
//!
//! ```sh
//! cargo run --release --example mergesort_locality
//! ```

use thread_locality::sim::MachineConfig;
use thread_locality::threads::{Engine, EngineConfig, SchedPolicy};
use thread_locality::workloads::merge::{spawn_parallel, MergeParams};

fn main() {
    let params = MergeParams { elements: 150_000, cutoff: 100, seed: 7 };

    // Peek at the annotation graph right after the root splits.
    let mut engine =
        Engine::new(MachineConfig::ultra1(), SchedPolicy::Lff, EngineConfig::default())
            .expect("valid machine");
    let (_, root) = spawn_parallel(&mut engine, &params);
    println!("mergesort of {} elements, insertion-sort cutoff {}", params.elements, params.cutoff);

    let mut results = Vec::new();
    for policy in [SchedPolicy::Fcfs, SchedPolicy::Lff, SchedPolicy::Crt] {
        let mut engine = Engine::new(MachineConfig::ultra1(), policy, EngineConfig::default())
            .expect("valid machine");
        let (shared, _) = spawn_parallel(&mut engine, &params);
        let report = engine.run().expect("sort completes");
        assert!(shared.is_sorted(), "the sort is real: the data must end up ordered");
        println!(
            "{:6}  threads={:5}  E-misses={:8}  cycles={:12}",
            report.policy, report.threads_completed, report.total_l2_misses, report.total_cycles
        );
        results.push(report);
    }
    let fcfs = &results[0];
    for r in &results[1..] {
        println!(
            "{}: eliminated {:.0}% of FCFS's misses ({:.2}x faster)",
            r.policy,
            r.misses_eliminated_vs(fcfs) * 100.0,
            r.speedup_over(fcfs)
        );
    }
    // The paper's annotation from Figure 2/3: children fully contained in
    // the parent. (The graph is empty again after the run — exited
    // threads are removed — so we inspect the fresh engine above.)
    let _ = root;
    println!("annotation pattern: at_share(child, parent, 1.0) after each at_create (paper §2.3)");
}
