//! Explore the shared-state cache model analytically: print the three
//! closed forms next to the exact Markov-chain expectation, for a small
//! cache where the exact chain is cheap.
//!
//! ```sh
//! cargo run --release --example model_explorer
//! ```

use thread_locality::core::markov::DependentChain;
use thread_locality::core::{FootprintModel, ModelParams};

fn main() {
    let params = ModelParams::new(1024).expect("valid cache");
    let model = FootprintModel::new(params);
    println!("cache: N = {} lines, k = {:.6}", params.lines(), params.k());
    println!();
    println!("dependent thread, S_C = 100 lines, q varies, n = misses by the running thread:");
    println!("{:>6} {:>6} {:>12} {:>12} {:>10}", "q", "n", "closed form", "exact chain", "diff");
    for q in [0.0, 0.25, 0.5, 1.0] {
        let chain = DependentChain::new(params, q).expect("valid q");
        for n in [10u64, 100, 1000, 5000] {
            let closed = model.expected_dependent(q, 100.0, n);
            let exact = chain.expected_after(100, n);
            println!(
                "{q:>6.2} {n:>6} {closed:>12.3} {exact:>12.3} {:>10.2e}",
                (closed - exact).abs()
            );
        }
    }
    println!();
    println!("the q=1 rows are the blocking-thread case and q=0 the independent case;");
    println!("the closed forms match the exact birth-death chain to floating-point noise.");

    // Reload ratio (CRT's criterion) for a thread that blocked with 800
    // lines cached.
    println!();
    println!("cache-reload ratio of a thread that blocked with 800 lines:");
    for n in [0u64, 200, 1000, 4000] {
        let now = model.expected_independent(800.0, n);
        println!(
            "  after {n:>5} further misses: E[F] = {now:>6.1} lines, R = {:.3}",
            model.reload_ratio(800.0, now)
        );
    }
}
