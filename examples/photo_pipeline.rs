//! The photo pipeline on the simulated 8-CPU Enterprise 5000: one thread
//! per image row, neighbour-sharing annotations, and a comparison of all
//! scheduling policies including the annotation-free ablation.
//!
//! ```sh
//! cargo run --release --example photo_pipeline
//! ```

use thread_locality::sim::MachineConfig;
use thread_locality::threads::{Engine, EngineConfig, SchedPolicy};
use thread_locality::workloads::photo::{spawn_parallel, PhotoParams};

fn main() {
    let params = PhotoParams { width: 1024, height: 512, ..PhotoParams::default() };
    println!(
        "softening a {}x{} RGB image, one thread per row ({} threads)",
        params.width, params.height, params.height
    );

    let mut reference = None;
    let mut fcfs = None;
    for policy in
        [SchedPolicy::Fcfs, SchedPolicy::Lff, SchedPolicy::Crt, SchedPolicy::LffNoAnnotations]
    {
        let mut engine =
            Engine::new(MachineConfig::enterprise5000(8), policy, EngineConfig::default())
                .expect("valid machine");
        let (shared, tids) = spawn_parallel(&mut engine, &params);
        if policy == SchedPolicy::Fcfs {
            // The annotations the builder derived from the exact overlaps.
            let g = engine.graph();
            println!(
                "annotations for row 100: q(d=1)={:.2} q(d=2)={:.2} q(d=3)={:.2} q(d=4)={:.2}",
                g.weight(tids[100], tids[101]),
                g.weight(tids[100], tids[102]),
                g.weight(tids[100], tids[103]),
                g.weight(tids[100], tids[104]),
            );
        }
        let report = engine.run().expect("filter completes");
        let checksum = shared.output_checksum();
        match reference {
            None => reference = Some(checksum),
            Some(r) => assert_eq!(r, checksum, "output must not depend on the schedule"),
        }
        match &fcfs {
            None => {
                println!(
                    "{:10}  E-misses={:8}  cycles={:12}",
                    report.policy, report.total_l2_misses, report.total_cycles
                );
                fcfs = Some(report);
            }
            Some(base) => {
                println!(
                    "{:10}  E-misses={:8}  cycles={:12}  (-{:.0}% misses, {:.2}x)",
                    report.policy,
                    report.total_l2_misses,
                    report.total_cycles,
                    report.misses_eliminated_vs(base) * 100.0,
                    report.speedup_over(base)
                );
            }
        }
    }
    println!("every policy produced the same (checksummed) image.");
}
