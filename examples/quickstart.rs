//! Quickstart: the whole stack in ~60 lines.
//!
//! Builds the simulated 8-CPU Enterprise 5000, runs an oversubscribed
//! set of periodic threads under FCFS and under LFF, and prints how many
//! E-cache misses locality scheduling eliminated.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use thread_locality::core::{FootprintModel, ModelParams};
use thread_locality::sim::MachineConfig;
use thread_locality::threads::{BatchCtx, Control, Engine, EngineConfig, Program, SchedPolicy};

/// A periodic thread: touch 100 cache lines of private state, then sleep
/// for as long as the touch took (the paper's `tasks` benchmark).
struct PeriodicTask {
    region: Option<thread_locality::sim::VAddr>,
    periods: u32,
}

impl Program for PeriodicTask {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        let region = *self.region.get_or_insert_with(|| ctx.alloc(100 * 64, 64));
        ctx.register_region(region, 100 * 64);
        ctx.read_range(region, 100 * 64, 64);
        ctx.compute(400);
        self.periods -= 1;
        if self.periods == 0 {
            Control::Exit
        } else {
            Control::Sleep(ctx.batch_cycles())
        }
    }

    fn name(&self) -> &str {
        "periodic-task"
    }
}

fn run(policy: SchedPolicy) -> thread_locality::threads::RunReport {
    let mut engine = Engine::new(MachineConfig::enterprise5000(8), policy, EngineConfig::default())
        .expect("valid machine");
    for _ in 0..512 {
        engine.spawn(Box::new(PeriodicTask { region: None, periods: 25 }));
    }
    engine.run().expect("workload completes")
}

fn main() {
    // The analytical model itself, standalone: how fast does a cold
    // thread fill a 512 KiB / 64 B-line E-cache?
    let model = FootprintModel::new(ModelParams::new(8192).expect("valid cache"));
    println!(
        "a cold thread reaches half the cache after {} misses (model)",
        model.misses_to_fill(0.5).expect("0.5 is a valid fraction")
    );

    // The full runtime: FCFS vs Largest-Footprint-First.
    let fcfs = run(SchedPolicy::Fcfs);
    let lff = run(SchedPolicy::Lff);
    println!("FCFS: {:>9} E-cache misses, {:>12} cycles", fcfs.total_l2_misses, fcfs.total_cycles);
    println!("LFF : {:>9} E-cache misses, {:>12} cycles", lff.total_l2_misses, lff.total_cycles);
    println!(
        "LFF eliminated {:.0}% of the misses and ran {:.2}x faster",
        lff.misses_eliminated_vs(&fcfs) * 100.0,
        lff.speedup_over(&fcfs)
    );
}
