//! # thread-locality
//!
//! A full reproduction of Boris Weissman's ASPLOS 1998 paper
//! *"Performance Counters and State Sharing Annotations: a Unified Approach
//! to Thread Locality"*, as a facade crate re-exporting the workspace:
//!
//! * [`core`] — the analytical shared-state cache model, sharing-annotation
//!   graph, and the LFF/CRT priority schemes (`locality-core`);
//! * [`sim`] — the deterministic SMP machine simulator standing in for the
//!   paper's UltraSPARC/Shade infrastructure (`locality-sim`);
//! * [`threads`] — the Active-Threads-style green-thread runtime and its
//!   locality schedulers (`active-threads`);
//! * [`workloads`] — the paper's nine workloads (`locality-workloads`).
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the experiment index.

#![forbid(unsafe_code)]

pub use active_threads as threads;
pub use locality_core as core;
pub use locality_sim as sim;
pub use locality_workloads as workloads;
