//! Integration tests spanning all crates through the facade.

use std::cell::RefCell;
use std::rc::Rc;
use thread_locality::core::{CpuId, FootprintModel, ModelParams};
use thread_locality::sim::{AccessKind, Machine, MachineConfig};
use thread_locality::threads::{
    BatchCtx, Control, Engine, EngineConfig, EngineHook, Program, SchedPolicy, SwitchEvent,
    ThreadId,
};
use thread_locality::workloads::{merge, tasks, walk};

#[test]
fn machine_footprint_matches_model_for_random_walk() {
    // Drive the machine directly (no runtime): uniform random misses over
    // a huge region must follow the case-1 closed form.
    let mut machine = Machine::try_new(MachineConfig::ultra1()).unwrap();
    let tid = ThreadId(1);
    let lines = 8192u64 * 64;
    let region = machine.alloc(lines * 64, 64);
    machine.register_region(tid, region, lines * 64);
    machine.set_running(0, Some(tid));

    let mut x = 0x12345678u64;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..12_000 {
        let line = step() % lines;
        machine.access(0, region.offset(line * 64), AccessKind::Read);
    }
    let misses = machine.pic(0).misses();
    let observed = machine.l2_footprint_lines(0, tid) as f64;
    let model = FootprintModel::new(ModelParams::new(8192).unwrap());
    let predicted = model.expected_blocking(0.0, misses);
    let err = (observed - predicted).abs() / predicted;
    assert!(err < 0.04, "observed {observed} predicted {predicted:.0} err {err:.3}");
}

#[test]
fn estimator_tracks_ground_truth_through_the_runtime() {
    // A full runtime run: at every context switch, the scheduler's
    // expected footprint must stay close to the machine's ground truth
    // for the random walker (whose references satisfy the model).
    struct Check {
        tid: ThreadId,
        worst: Rc<RefCell<f64>>,
    }
    impl EngineHook for Check {
        fn on_context_switch(
            &mut self,
            ev: &SwitchEvent,
            view: &thread_locality::threads::events::EngineView<'_>,
        ) {
            if ev.tid != self.tid {
                return;
            }
            let observed = view.machine.l2_footprint_lines(ev.cpu, self.tid) as f64;
            let predicted = view.sched.expected_footprint(ev.cpu, self.tid).unwrap_or(0.0);
            if observed > 512.0 {
                let err = (predicted - observed).abs() / observed;
                let mut worst = self.worst.borrow_mut();
                if err > *worst {
                    *worst = err;
                }
            }
        }
    }
    let mut engine =
        Engine::new(MachineConfig::ultra1(), SchedPolicy::Lff, EngineConfig::default()).unwrap();
    let params = walk::WalkParams { total_accesses: 30_000, ..walk::WalkParams::default() };
    let tid = walk::spawn_single(&mut engine, &params);
    let worst = Rc::new(RefCell::new(0.0f64));
    engine.add_hook(Box::new(Check { tid, worst: worst.clone() }));
    engine.run().unwrap();
    let worst = *worst.borrow();
    assert!(worst < 0.06, "worst estimator error {worst:.3}");
}

#[test]
fn policies_preserve_program_semantics() {
    // Same sort, three schedulers, identical sorted output, identical
    // thread counts — only cache behaviour may differ.
    let params = merge::MergeParams { elements: 10_000, cutoff: 100, seed: 3 };
    let mut outcomes = Vec::new();
    for policy in [SchedPolicy::Fcfs, SchedPolicy::Lff, SchedPolicy::Crt] {
        let mut engine =
            Engine::new(MachineConfig::enterprise5000(4), policy, EngineConfig::default()).unwrap();
        let (shared, _) = merge::spawn_parallel(&mut engine, &params);
        let report = engine.run().unwrap();
        assert!(shared.is_sorted());
        outcomes.push(report.threads_completed);
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[1], outcomes[2]);
}

#[test]
fn oversubscribed_tasks_shape_holds_end_to_end() {
    let params = tasks::TasksParams { tasks: 200, footprint_lines: 100, periods: 10, overlap: 0.0 };
    let run = |policy| {
        let mut engine =
            Engine::new(MachineConfig::enterprise5000(2), policy, EngineConfig::default()).unwrap();
        tasks::spawn_parallel(&mut engine, &params);
        engine.run().unwrap()
    };
    let fcfs = run(SchedPolicy::Fcfs);
    let lff = run(SchedPolicy::Lff);
    let crt = run(SchedPolicy::Crt);
    assert!(lff.misses_eliminated_vs(&fcfs) > 0.5);
    assert!(crt.misses_eliminated_vs(&fcfs) > 0.5);
    assert!(lff.speedup_over(&fcfs) > 1.2);
    assert!(crt.speedup_over(&fcfs) > 1.2);
}

#[test]
fn counters_are_the_only_model_input() {
    // The scheduler must work (and help) even when ground-truth regions
    // are never registered: the estimator runs on PIC deltas alone.
    struct Toucher {
        region: Option<thread_locality::sim::VAddr>,
        rounds: u32,
    }
    impl Program for Toucher {
        fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
            let region = *self.region.get_or_insert_with(|| ctx.alloc(6400, 64));
            // Note: no register_region at all.
            ctx.read_range(region, 6400, 64);
            self.rounds -= 1;
            if self.rounds == 0 {
                Control::Exit
            } else {
                Control::Sleep(ctx.batch_cycles())
            }
        }
    }
    let run = |policy| {
        let mut engine =
            Engine::new(MachineConfig::ultra1(), policy, EngineConfig::default()).unwrap();
        for _ in 0..200 {
            engine.spawn(Box::new(Toucher { region: None, rounds: 8 }));
        }
        engine.run().unwrap()
    };
    let fcfs = run(SchedPolicy::Fcfs);
    let lff = run(SchedPolicy::Lff);
    assert!(
        lff.misses_eliminated_vs(&fcfs) > 0.5,
        "counters-only affinity must still work: {:.2}",
        lff.misses_eliminated_vs(&fcfs)
    );
}

#[test]
fn cross_cpu_invalidations_are_visible_to_ground_truth_only() {
    // Build footprint on cpu0, write from cpu1: ground truth shrinks, the
    // estimator (which ignores invalidations, paper §3.4) does not.
    use thread_locality::core::{EstimatorConfig, LocalityEstimator, PolicyKind, SharingGraph};
    let mut machine = Machine::try_new(MachineConfig::enterprise5000(2)).unwrap();
    let mut est = LocalityEstimator::new(EstimatorConfig::new(
        PolicyKind::Lff,
        ModelParams::new(8192).unwrap(),
        2,
    ));
    let graph = SharingGraph::new();
    let a = ThreadId(1);
    let region = machine.alloc(2048 * 64, 64);
    machine.register_region(a, region, 2048 * 64);
    machine.set_running(0, Some(a));
    est.on_dispatch(CpuId(0), a);
    for l in 0..2048u64 {
        machine.access(0, region.offset(l * 64), AccessKind::Read);
    }
    let delta = machine.pic_take_interval(0).expect("clean machine read");
    est.on_interval_end(CpuId(0), a, delta.misses, &graph);

    machine.set_running(1, Some(ThreadId(2)));
    for l in 0..1024u64 {
        machine.access(1, region.offset(l * 64), AccessKind::Write);
    }
    let observed = machine.l2_footprint_lines(0, a) as f64;
    let predicted = est.expected_footprint(CpuId(0), a);
    assert!(observed < 1100.0, "half the lines were invalidated: {observed}");
    // The estimate (~N·(1−k^2048) ≈ 1812) is untouched by the remote
    // writes — far above the real, invalidated footprint.
    assert!(predicted > 1700.0, "the model cannot see invalidations: {predicted}");
    assert!(predicted > observed * 1.5);
}

#[test]
fn runtime_inference_discovers_sharing() {
    // Two iterating threads over one buffer, no annotations: with CML
    // inference enabled, the engine must discover the sharing and place
    // them together (fewer misses than without inference).
    use thread_locality::threads::InferenceConfig;
    struct Pinger {
        buf: thread_locality::sim::VAddr,
        rounds: u32,
    }
    impl Program for Pinger {
        fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
            ctx.register_region(self.buf, 6400);
            ctx.write_range(self.buf, 6400, 64);
            self.rounds -= 1;
            if self.rounds == 0 {
                Control::Exit
            } else {
                Control::Sleep(ctx.batch_cycles())
            }
        }
    }
    let run = |infer: bool| {
        let config = EngineConfig {
            infer_sharing: infer.then(InferenceConfig::default),
            ..EngineConfig::default()
        };
        let mut engine =
            Engine::new(MachineConfig::enterprise5000(2), SchedPolicy::Lff, config).unwrap();
        // Many pairs sharing buffers, interleaved so FIFO separates them.
        for _ in 0..24 {
            let buf = engine.machine_mut().alloc(6400, 8192);
            engine.spawn(Box::new(Pinger { buf, rounds: 12 }));
            engine.spawn(Box::new(Pinger { buf, rounds: 12 }));
        }
        engine.run().unwrap()
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with.total_l2_misses < without.total_l2_misses,
        "inference should colocate sharers: {} vs {}",
        with.total_l2_misses,
        without.total_l2_misses
    );
}
