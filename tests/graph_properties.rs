//! Property-based tests of [`SharingGraph`] structural invariants
//! (proptest): random operation sequences against a flat-map mirror, with
//! forward/reverse adjacency checked after every sequence.

use proptest::prelude::*;
use std::collections::BTreeMap;
use thread_locality::core::{SharingGraph, ThreadId};

/// One random graph operation over a small thread-id universe.
#[derive(Debug, Clone)]
enum Op {
    Set { src: u64, dst: u64, q: f64 },
    RemoveEdge { src: u64, dst: u64 },
    RemoveThread { t: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let tid = 0u64..8;
    prop_oneof![
        // Mostly valid coefficients, occasionally invalid or zero, so the
        // sequences exercise rejection and edge removal too.
        4 => (tid.clone(), 0u64..8, prop_oneof![
            5 => 0.0f64..=1.0,
            1 => Just(0.0f64),
            1 => Just(1.5f64),
            1 => Just(f64::NAN),
        ])
            .prop_map(|(src, dst, q)| Op::Set { src, dst, q }),
        1 => (tid.clone(), 0u64..8).prop_map(|(src, dst)| Op::RemoveEdge { src, dst }),
        1 => tid.prop_map(|t| Op::RemoveThread { t }),
    ]
}

/// Applies ops to both the graph and a plain `(src, dst) → q` mirror.
fn apply(ops: &[Op]) -> (SharingGraph, BTreeMap<(u64, u64), f64>) {
    let mut g = SharingGraph::new();
    let mut mirror = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Set { src, dst, q } => {
                let accepted = g.set(ThreadId(src), ThreadId(dst), q).is_ok();
                let valid = q.is_finite() && (0.0..=1.0).contains(&q) && src != dst;
                assert_eq!(accepted, valid, "set({src}, {dst}, {q})");
                if valid {
                    if q == 0.0 {
                        mirror.remove(&(src, dst));
                    } else {
                        mirror.insert((src, dst), q);
                    }
                }
            }
            Op::RemoveEdge { src, dst } => {
                let prev = g.remove_edge(ThreadId(src), ThreadId(dst));
                assert_eq!(prev, mirror.remove(&(src, dst)));
            }
            Op::RemoveThread { t } => {
                g.remove_thread(ThreadId(t));
                mirror.retain(|&(s, d), _| s != t && d != t);
            }
        }
    }
    (g, mirror)
}

proptest! {
    /// After any operation sequence the graph matches the mirror exactly:
    /// same edge set via `edges()`, same weights via `weight()`, and the
    /// forward and reverse adjacency views agree edge by edge.
    #[test]
    fn graph_matches_mirror(ops in proptest::collection::vec(op_strategy(), 0..64)) {
        let (g, mirror) = apply(&ops);

        // edges() round-trips through weight() and matches the mirror.
        let listed: BTreeMap<(u64, u64), f64> =
            g.edges().map(|(s, d, q)| ((s.0, d.0), q)).collect();
        prop_assert_eq!(&listed, &mirror);
        for (&(s, d), &q) in &mirror {
            prop_assert_eq!(g.weight(ThreadId(s), ThreadId(d)), q);
        }
        prop_assert_eq!(g.edge_count(), mirror.len());
        prop_assert_eq!(g.is_empty(), mirror.is_empty());

        // Forward and reverse adjacency are consistent.
        for t in 0..8u64 {
            let tid = ThreadId(t);
            let outs: Vec<_> = g.dependents_of(tid).collect();
            prop_assert_eq!(outs.len(), g.out_degree(tid));
            for (dst, q) in outs {
                prop_assert!(
                    g.dependencies_of(dst).any(|(s, qq)| s == tid && qq == q),
                    "out-edge {tid:?}→{dst:?} missing from reverse adjacency"
                );
            }
            for (src, q) in g.dependencies_of(tid) {
                prop_assert!(
                    g.dependents_of(src).any(|(d, qq)| d == tid && qq == q),
                    "in-edge {src:?}→{tid:?} missing from forward adjacency"
                );
            }
        }
    }

    /// `remove_thread` leaves no incident edges in either direction, and
    /// never disturbs edges between other threads.
    #[test]
    fn remove_thread_removes_all_incident_edges(
        ops in proptest::collection::vec(op_strategy(), 0..48),
        victim in 0u64..8,
    ) {
        let (mut g, mirror) = apply(&ops);
        g.remove_thread(ThreadId(victim));

        let v = ThreadId(victim);
        prop_assert_eq!(g.out_degree(v), 0);
        prop_assert_eq!(g.dependencies_of(v).count(), 0);
        prop_assert!(g.edges().all(|(s, d, _)| s != v && d != v));

        let expected: BTreeMap<(u64, u64), f64> = mirror
            .into_iter()
            .filter(|&((s, d), _)| s != victim && d != victim)
            .collect();
        let listed: BTreeMap<(u64, u64), f64> =
            g.edges().map(|(s, d, q)| ((s.0, d.0), q)).collect();
        prop_assert_eq!(listed, expected);
    }
}
