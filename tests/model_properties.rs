//! Property-based tests of the core model invariants (proptest).

use proptest::prelude::*;
use thread_locality::core::markov::{expectation, total_mass, DependentChain};
use thread_locality::core::priority::FootprintEntry;
use thread_locality::core::{
    FootprintModel, ModelParams, PolicyKind, PrioritySchemes, SharingGraph, ThreadId,
};

proptest! {
    /// The closed form equals the exact Markov-chain expectation for any
    /// q, initial footprint, and miss count (small cache so the chain is
    /// cheap).
    #[test]
    fn closed_form_equals_chain(
        q in 0.0f64..=1.0,
        s0 in 0usize..=64,
        n in 0u64..400,
    ) {
        let params = ModelParams::new(64).unwrap();
        let model = FootprintModel::new(params);
        let chain = DependentChain::new(params, q).unwrap();
        let exact = chain.expected_after(s0, n);
        let closed = model.expected_dependent(q, s0 as f64, n);
        prop_assert!((exact - closed).abs() < 1e-7,
            "q={q} s0={s0} n={n}: exact {exact} vs closed {closed}");
    }

    /// The chain's distribution stays a probability distribution.
    #[test]
    fn chain_conserves_mass(q in 0.0f64..=1.0, s0 in 0usize..=32, n in 0u64..200) {
        let params = ModelParams::new(32).unwrap();
        let chain = DependentChain::new(params, q).unwrap();
        let dist = chain.distribution_after(s0, n);
        prop_assert!((total_mass(&dist) - 1.0).abs() < 1e-9);
        prop_assert!(dist.iter().all(|&p| (-1e-12..=1.0 + 1e-9).contains(&p)));
        let e = expectation(&dist);
        prop_assert!((0.0..=32.0).contains(&e));
    }

    /// Footprints are always within [0, N] and move monotonically toward
    /// the fixed point qN.
    #[test]
    fn dependent_moves_toward_fixed_point(
        q in 0.0f64..=1.0,
        s0 in 0.0f64..=1024.0,
        n1 in 0u64..5_000,
        dn in 1u64..5_000,
    ) {
        let model = FootprintModel::new(ModelParams::new(1024).unwrap());
        let target = q * 1024.0;
        let f1 = model.expected_dependent(q, s0, n1);
        let f2 = model.expected_dependent(q, s0, n1 + dn);
        prop_assert!((0.0..=1024.0).contains(&f1));
        prop_assert!((f2 - target).abs() <= (f1 - target).abs() + 1e-9,
            "must approach the fixed point: {f1} then {f2}, target {target}");
    }

    /// Case 1 and case 2 are the q=1 / q=0 specializations of case 3.
    #[test]
    fn case_specializations(s0 in 0.0f64..=512.0, n in 0u64..10_000) {
        let model = FootprintModel::new(ModelParams::new(512).unwrap());
        let blocking = model.expected_blocking(s0, n);
        let dep1 = model.expected_dependent(1.0, s0, n);
        let independent = model.expected_independent(s0, n);
        let dep0 = model.expected_dependent(0.0, s0, n);
        prop_assert!((blocking - dep1).abs() < 1e-9);
        prop_assert!((independent - dep0).abs() < 1e-9);
    }

    /// The LFF log-space priority orders any two entries exactly like
    /// their current expected footprints, no matter when each was last
    /// updated (the paper's equivalence claim in §4.1).
    #[test]
    fn lff_priority_equivalent_to_footprint_order(
        misses_a in 1u64..3_000,
        misses_b in 1u64..3_000,
        gap in 0u64..3_000,
    ) {
        let schemes = PrioritySchemes::new(PolicyKind::Lff, ModelParams::new(4096).unwrap());
        let mut a = FootprintEntry::cold();
        let mut b = FootprintEntry::cold();
        // A runs first, then B; priorities are never updated afterwards.
        schemes.on_dispatch(&mut a, 0);
        schemes.on_block_self(&mut a, misses_a, misses_a);
        schemes.on_dispatch(&mut b, misses_a);
        schemes.on_block_self(&mut b, misses_b, misses_a + misses_b);
        let m_now = misses_a + misses_b + gap;
        let fa = schemes.expected_footprint(&a, m_now);
        let fb = schemes.expected_footprint(&b, m_now);
        // Table rounding makes near-ties ambiguous; require a 2% margin.
        if (fa - fb).abs() > 0.02 * fa.max(fb).max(1.0) {
            prop_assert_eq!(a.prio > b.prio, fa > fb,
                "prio ({}, {}) vs footprints ({}, {})", a.prio, b.prio, fa, fb);
        }
    }

    /// Graph edges round-trip and removal really removes.
    #[test]
    fn graph_set_get_remove(
        edges in proptest::collection::vec((0u64..20, 0u64..20, 0.0f64..=1.0), 0..60)
    ) {
        let mut g = SharingGraph::new();
        let mut expected = std::collections::BTreeMap::new();
        for (src, dst, q) in edges {
            if src == dst {
                prop_assert!(g.set(ThreadId(src), ThreadId(dst), q).is_err());
                continue;
            }
            g.set(ThreadId(src), ThreadId(dst), q).unwrap();
            if q == 0.0 {
                expected.remove(&(src, dst));
            } else {
                expected.insert((src, dst), q);
            }
        }
        prop_assert_eq!(g.edge_count(), expected.len());
        for (&(src, dst), &q) in &expected {
            prop_assert_eq!(g.weight(ThreadId(src), ThreadId(dst)), q);
        }
        // Removing every thread empties the graph.
        for t in 0..20 {
            g.remove_thread(ThreadId(t));
        }
        prop_assert!(g.is_empty());
    }
}

// Boundary cases the closed form and the memoized tables must agree on
// exactly: zero misses (the identity transient), and the degenerate
// sharing coefficients q = 0 (footprint only decays) and q = 1 (every
// miss is a shared-state fill). Each test pins the boundary coordinate
// and randomizes everything else.
proptest! {
    /// Zero misses change nothing, for every q, s0, and query route
    /// (exact chain, closed form, memoized table).
    #[test]
    fn n_zero_is_identity(q in 0.0f64..=1.0, s0 in 0usize..=64) {
        let params = ModelParams::new(64).unwrap();
        let chain = DependentChain::new(params, q).unwrap();
        prop_assert_eq!(chain.expected_after(s0, 0), s0 as f64);
        let dist = chain.distribution_after(s0, 0);
        prop_assert_eq!(dist[s0], 1.0);
        prop_assert!((total_mass(&dist) - 1.0).abs() < 1e-12);
        let model = FootprintModel::new(params);
        prop_assert!((model.expected_dependent(q, s0 as f64, 0) - s0 as f64).abs() < 1e-12);
        let table = chain.tabulate(256);
        prop_assert!((table.expected_after(s0 as f64, 0) - s0 as f64).abs() < 1e-12);
    }

    /// At q = 0 and q = 1 the exact chain, the closed form, and the
    /// memoized transient table agree for arbitrary (s0, n) — including
    /// queries past the table's grid, which continue analytically.
    #[test]
    fn degenerate_q_routes_agree(
        q_one in prop_oneof![Just(0.0f64), Just(1.0f64)],
        s0 in 0usize..=64,
        n in 0u64..1_000,
    ) {
        let params = ModelParams::new(64).unwrap();
        let model = FootprintModel::new(params);
        let chain = DependentChain::new(params, q_one).unwrap();
        let exact = chain.expected_after(s0, n);
        let closed = model.expected_dependent(q_one, s0 as f64, n);
        prop_assert!((exact - closed).abs() < 1e-7,
            "q={q_one} s0={s0} n={n}: exact {exact} vs closed {closed}");
        // Table built shorter than the largest query: exercises both the
        // interpolated and the extrapolated (n > n_max) paths. Off-grid
        // queries interpolate the exponential transient linearly, so the
        // table is only accurate to the grid spacing — hold it to a
        // twentieth of a line, not float precision.
        let table = chain.tabulate(128);
        let tabulated = table.expected_after(s0 as f64, n);
        prop_assert!((tabulated - closed).abs() < 5e-2,
            "q={q_one} s0={s0} n={n}: table {tabulated} vs closed {closed}");
    }

    /// The hybrid eager/on-demand kⁿ table returns the same values as
    /// the exact formula wherever the eager prefix ends.
    #[test]
    fn kpow_table_matches_formula(
        entries in 1usize..512,
        n in 0u64..2_048,
    ) {
        use thread_locality::core::tables::PrecomputedTables;
        let params = ModelParams::new(512).unwrap();
        let tables = PrecomputedTables::with_kpow_entries(params, entries);
        let got = tables.k_pow(n);
        let want = if (n as usize) < entries { params.k_pow(n) } else { 0.0 };
        prop_assert!((got - want).abs() < 1e-12,
            "entries={entries} n={n}: table {got} vs formula {want}");
    }
}
