//! Property-based equivalence of the batched reference-run path against
//! the scalar per-address loop it replaces.
//!
//! `Machine::access_run` (and the `BatchCtx` run helpers built on it)
//! promise to be observationally **byte-identical** to issuing each
//! access separately: every counter, statistic, directory bit, CML
//! entry, and observation-log event must come out the same. These tests
//! drive both paths over machines warmed into identical states —
//! including cross-processor sharing so the remote-miss and
//! write-invalidate cases fire — and diff every observable surface.

use proptest::prelude::*;
use thread_locality::core::ThreadId;
use thread_locality::sim::{AccessKind, CacheGeometry, Machine, MachineConfig, TlbConfig, VAddr};
use thread_locality::threads::sched::FcfsScheduler;
use thread_locality::threads::{BatchCtx, ChaosConfig, Control, Engine, EngineConfig, Program};

const ARENA: u64 = 64 * 1024;

fn kind_of(sel: u8) -> AccessKind {
    match sel % 3 {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        _ => AccessKind::Fetch,
    }
}

/// Builds a machine with an arena allocated and a warm-up access pattern
/// applied: thread B on cpu 1 touches a prefix of the arena (with some
/// writes), so the directory has remote holders and dirty lines before
/// the compared operation runs on cpu 0.
fn warmed_machine(prelude: &[(u16, u8)]) -> (Machine, VAddr) {
    let mut m = Machine::try_new(MachineConfig::enterprise5000(2)).expect("valid config");
    m.enable_cml(64);
    let arena = m.alloc(ARENA, 64);
    let b = ThreadId(2);
    m.register_region(b, arena, ARENA);
    m.set_running(1, Some(b));
    for &(off, write) in prelude {
        let kind = if write == 1 { AccessKind::Write } else { AccessKind::Read };
        m.access(1, arena.offset(u64::from(off) % ARENA), kind);
    }
    m.set_running(1, None);
    (m, arena)
}

/// Every externally observable surface of a machine, for diffing.
#[derive(Debug, PartialEq)]
struct Observed {
    cycles: u64,
    cpu0: thread_locality::sim::CpuStats,
    cpu1: thread_locality::sim::CpuStats,
    stats_a: thread_locality::sim::ThreadStats,
    stats_b: thread_locality::sim::ThreadStats,
    pic0: (u32, u32),
    pic1: (u32, u32),
    resident0: u64,
    resident1: u64,
    footprints0: Vec<(ThreadId, u64)>,
    footprints1: Vec<(ThreadId, u64)>,
    total_misses: u64,
    page_faults: u64,
    cml0: Vec<thread_locality::sim::CmlEntry>,
    cml1: Vec<thread_locality::sim::CmlEntry>,
}

fn observe(m: &mut Machine, cycles: u64) -> Observed {
    Observed {
        cycles,
        cpu0: m.cpu_stats(0),
        cpu1: m.cpu_stats(1),
        stats_a: m.thread_stats(ThreadId(1)),
        stats_b: m.thread_stats(ThreadId(2)),
        pic0: m.pic(0).read_raw(),
        pic1: m.pic(1).read_raw(),
        resident0: m.l2_resident_lines(0),
        resident1: m.l2_resident_lines(1),
        footprints0: m.l2_footprints(0).into_iter().collect(),
        footprints1: m.l2_footprints(1).into_iter().collect(),
        total_misses: m.total_l2_misses(),
        page_faults: m.page_faults(),
        cml0: m.cml_drain(0),
        cml1: m.cml_drain(1),
    }
}

proptest! {
    /// `access_run` leaves the machine in exactly the state the scalar
    /// loop does — counters, stats, PICs, footprints, CML — for
    /// arbitrary strides (including 0 and page-crossing), counts
    /// (including 0), kinds, and warm-up sharing patterns; and the two
    /// machines stay indistinguishable under a follow-up write storm
    /// from the other processor (identical internal cache/directory
    /// state, not just identical summaries).
    #[test]
    fn run_matches_scalar_loop(
        prelude in proptest::collection::vec((0u16..1024, 0u8..2), 0..64),
        base_off in 0u64..8192,
        stride in prop_oneof![Just(0u64), Just(1), Just(63), Just(64), Just(65),
                              Just(4096), Just(8192), 0u64..512],
        count in 0u64..96,
        kind_sel in 0u8..3,
    ) {
        let kind = kind_of(kind_sel);
        let a = ThreadId(1);
        let (mut m1, arena1) = warmed_machine(&prelude);
        let (mut m2, arena2) = warmed_machine(&prelude);
        prop_assert_eq!(arena1, arena2, "allocation is deterministic");
        let base = arena1.offset(base_off);

        m1.set_running(0, Some(a));
        m2.set_running(0, Some(a));
        let run_cycles = m1.access_run(0, base, stride, count, kind);
        let mut loop_cycles = 0;
        for i in 0..count {
            loop_cycles += m2.access(0, base.offset(i * stride), kind);
        }

        // Epilogue from the other processor: writes that collide with the
        // accessed range surface any divergence in directory or cache
        // internals as a stats difference.
        for m in [&mut m1, &mut m2] {
            m.set_running(0, None);
            m.set_running(1, Some(ThreadId(2)));
            for i in 0..16u64 {
                m.access(1, base.offset((i * 64) % ARENA), AccessKind::Write);
            }
            m.set_running(1, None);
        }

        let o1 = observe(&mut m1, run_cycles);
        let o2 = observe(&mut m2, loop_cycles);
        prop_assert_eq!(o1, o2);
    }
}

/// A program that touches `count` addresses, one batch per period,
/// either as scalar per-address ops or as a points-run — the two must be
/// indistinguishable from outside the engine.
#[derive(Debug)]
struct Toucher {
    batched: bool,
    region: VAddr,
    bytes: u64,
    stride: u64,
    count: u64,
    write: bool,
    periods_left: u32,
}

impl Program for Toucher {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        if self.region.0 == 0 {
            self.region = ctx.alloc(self.bytes, 64);
        }
        ctx.register_region(self.region, self.bytes);
        if self.batched {
            if self.write {
                ctx.write_run_points(self.region, self.stride, self.count);
            } else {
                ctx.read_run_points(self.region, self.stride, self.count);
            }
        } else {
            for i in 0..self.count {
                let va = self.region.offset(i * self.stride);
                if self.write {
                    ctx.write(va);
                } else {
                    ctx.read(va);
                }
            }
        }
        ctx.compute(self.count);
        self.periods_left -= 1;
        if self.periods_left == 0 {
            Control::Exit
        } else {
            Control::Sleep(ctx.batch_cycles())
        }
    }
    fn name(&self) -> &str {
        "toucher"
    }
}

fn run_engine(
    batched: bool,
    config: EngineConfig,
    threads: &[(u64, u64, u8)],
) -> (Vec<String>, Vec<u64>, u64, Vec<String>, u64) {
    let mut e = Engine::with_scheduler(MachineConfig::ultra1(), FcfsScheduler::new(), config)
        .expect("valid config");
    e.enable_observation();
    for &(stride, count, write) in threads {
        e.spawn(Box::new(Toucher {
            batched,
            region: VAddr(0),
            bytes: (count * stride.max(1)).max(64),
            stride,
            count,
            write: write == 1,
            periods_left: 3,
        }));
    }
    let report = e.run().expect("run completes");
    let log = e.take_observation().expect("observation enabled");
    let events: Vec<String> = log.events().iter().map(|ev| format!("{ev:?}")).collect();
    let points: Vec<String> = e.take_schedule_points().iter().map(|p| format!("{p:?}")).collect();
    let stats = e.machine().cpu_stats(0);
    (
        events,
        vec![
            stats.l1d_refs,
            stats.l1d_misses,
            stats.l2_refs,
            stats.l2_hits,
            stats.l2_misses,
            stats.mem_cycles,
            stats.instructions,
        ],
        report.context_switches,
        points,
        report.threads_aborted,
    )
}

proptest! {
    /// Programs using `read_run_points`/`write_run_points` produce the
    /// identical observation-log event sequence, machine statistics, and
    /// switch count as the same programs issuing scalar `read`/`write`
    /// calls, across interleaved multi-thread schedules.
    #[test]
    fn points_runs_match_scalar_programs(
        specs in proptest::collection::vec(
            (prop_oneof![Just(0u64), Just(32), Just(64), Just(192)],
             1u64..48,
             0u8..2),
            1..6),
    ) {
        let (ev_a, st_a, sw_a, _, _) = run_engine(true, EngineConfig::default(), &specs);
        let (ev_b, st_b, sw_b, _, _) = run_engine(false, EngineConfig::default(), &specs);
        prop_assert_eq!(ev_a, ev_b);
        prop_assert_eq!(st_a, st_b);
        prop_assert_eq!(sw_a, sw_b);
    }

    /// The equivalence survives the two adversarial engine modes. Under
    /// `schedule_points` the points variants must yield the identical
    /// [`SchedulePoint`] sequence — same visible ops, same one-span-per-
    /// element access lists — because batch boundaries (the decision
    /// points) are unchanged by batching the accesses inside a batch.
    /// Under chaos, abort decisions fire at those same batch boundaries,
    /// so the seeded fault stream kills the same threads at the same
    /// points in both variants.
    #[test]
    fn runs_match_under_schedule_points_and_chaos(
        specs in proptest::collection::vec(
            (prop_oneof![Just(0u64), Just(32), Just(64), Just(192)],
             1u64..48,
             0u8..2),
            1..5),
        chaos_seed in 0u64..1_024,
    ) {
        let sp = EngineConfig { schedule_points: true, ..EngineConfig::default() };
        let (ev_a, st_a, sw_a, pts_a, _) = run_engine(true, sp, &specs);
        let (ev_b, st_b, sw_b, pts_b, _) = run_engine(false, sp, &specs);
        prop_assert_eq!(ev_a, ev_b);
        prop_assert_eq!(st_a, st_b);
        prop_assert_eq!(sw_a, sw_b);
        prop_assert!(!pts_a.is_empty(), "schedule_points must record points");
        prop_assert_eq!(pts_a, pts_b);

        let chaos = EngineConfig {
            chaos: Some(ChaosConfig {
                seed: chaos_seed,
                abort_running_per_64k: 8_192, // ~1/8 per batch: aborts mid-run
                ..ChaosConfig::default()
            }),
            ..EngineConfig::default()
        };
        let (ev_a, st_a, sw_a, _, ab_a) = run_engine(true, chaos, &specs);
        let (ev_b, st_b, sw_b, _, ab_b) = run_engine(false, chaos, &specs);
        prop_assert_eq!(ev_a, ev_b);
        prop_assert_eq!(st_a, st_b);
        prop_assert_eq!(sw_a, sw_b);
        prop_assert_eq!(ab_a, ab_b, "same seed must kill the same threads");
    }

    /// Spelling the default memory system out explicitly — the ultra1's
    /// direct-mapped 8192×1 L2, 8 KiB pages, and the default TLB — must
    /// be indistinguishable from leaving every `EngineConfig` override
    /// at `None`: same observation-log events, statistics, and switch
    /// counts. The geometry plumbing is a pure generalization, not a
    /// behavior change.
    #[test]
    fn explicit_direct_mapped_geometry_is_byte_identical(
        specs in proptest::collection::vec(
            (prop_oneof![Just(0u64), Just(32), Just(64), Just(192)],
             1u64..48,
             0u8..2),
            1..5),
        batched_sel in 0u8..2,
    ) {
        let batched = batched_sel == 1;
        let explicit = EngineConfig {
            l2_geometry: Some(CacheGeometry { sets: 8192, ways: 1, line: 64 }),
            page_bytes: Some(8 * 1024),
            tlb: Some(TlbConfig::default()),
            ..EngineConfig::default()
        };
        let a = run_engine(batched, EngineConfig::default(), &specs);
        let b = run_engine(batched, explicit, &specs);
        prop_assert_eq!(a, b);
    }
}
