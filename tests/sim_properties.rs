//! Property-based tests of the machine substrate: the cache against a
//! naive reference model, regions against a brute-force byte map, and
//! the priority heap against a sorted list.

use proptest::prelude::*;
use thread_locality::core::{ThreadId, ThreadSlots};
use thread_locality::sim::{Cache, CacheGeometry, RegionTable, Tlb, TlbConfig, VAddr};
use thread_locality::threads::heap::PrioHeap;

/// A naive direct-mapped cache reference: one slot per set.
fn reference_direct_mapped(lines: u64, accesses: &[u64]) -> (u64, Vec<Option<u64>>) {
    let mut slots: Vec<Option<u64>> = vec![None; lines as usize];
    let mut misses = 0;
    for &pline in accesses {
        let set = (pline % lines) as usize;
        if slots[set] != Some(pline) {
            misses += 1;
            slots[set] = Some(pline);
        }
    }
    (misses, slots)
}

proptest! {
    /// The set-associative cache with one way behaves exactly like the
    /// naive direct-mapped reference.
    #[test]
    fn direct_mapped_matches_reference(
        accesses in proptest::collection::vec(0u64..256, 1..400)
    ) {
        let lines = 32u64;
        let mut cache = Cache::new(CacheGeometry::new(lines, 1, 64).unwrap());
        let mut misses = 0;
        for &pline in &accesses {
            if !cache.probe(pline) {
                misses += 1;
                cache.insert(pline, false);
            }
        }
        let (ref_misses, ref_slots) = reference_direct_mapped(lines, &accesses);
        prop_assert_eq!(misses, ref_misses);
        let mut resident: Vec<u64> = cache.iter_resident().collect();
        resident.sort_unstable();
        let mut expected: Vec<u64> = ref_slots.into_iter().flatten().collect();
        expected.sort_unstable();
        prop_assert_eq!(resident, expected);
    }

    /// An LRU set-associative cache never misses more than a
    /// direct-mapped cache of the same *set count* per set... instead we
    /// check the simpler hit-after-insert invariant and capacity bound.
    #[test]
    fn set_associative_invariants(
        accesses in proptest::collection::vec(0u64..128, 1..300),
        ways_pow in 0u32..=2,
    ) {
        let ways = 1u64 << ways_pow; // 1, 2 or 4 (sizes must be powers of two)
        let sets = 16u64;
        let geom = CacheGeometry::new(sets, ways, 64).unwrap();
        let mut cache = Cache::new(geom);
        for &pline in &accesses {
            if !cache.probe(pline) {
                cache.insert(pline, false);
            }
            // Just-accessed line must be resident.
            prop_assert!(cache.contains(pline));
            prop_assert!(cache.resident_lines() <= sets * ways);
        }
    }

    /// Set-index mapping is exclusive: a line lives in exactly the set
    /// `pline mod sets`. Lines of one residue class can only displace
    /// each other — traffic on every other residue leaves the class
    /// untouched, and overfilling the class evicts a class member.
    #[test]
    fn set_index_mapping_is_exclusive(
        sets_pow in 0u32..=4,
        ways_pow in 0u32..=2,
        residue_sel in 0u64..16,
        others in proptest::collection::vec(0u64..512, 0..64),
    ) {
        let sets = 1u64 << sets_pow;
        let ways = 1u64 << ways_pow;
        let residue = residue_sel % sets;
        let mut cache = Cache::new(CacheGeometry::new(sets, ways, 64).unwrap());
        let family: Vec<u64> = (0..ways).map(|i| residue + i * sets).collect();
        for &l in &family {
            cache.insert(l, false);
        }
        // Arbitrary traffic on other residues cannot displace the family.
        for &o in &others {
            if o % sets != residue {
                cache.probe_or_fill(o, false);
            }
        }
        for &l in &family {
            prop_assert!(cache.contains(l), "cross-set traffic evicted line {}", l);
        }
        // One more line of the same residue displaces a family member.
        let (hit, evicted) = cache.probe_or_fill(residue + ways * sets, false);
        prop_assert!(!hit);
        let e = evicted.expect("the set was full");
        prop_assert_eq!(e.pline % sets, residue, "victim came from another set");
        prop_assert!(family.contains(&e.pline));
    }

    /// The set-associative cache implements exact per-set LRU: hits,
    /// eviction victims, and final residency all match a recency-list
    /// reference model, for every geometry.
    #[test]
    fn lru_eviction_matches_reference(
        accesses in proptest::collection::vec(0u64..96, 1..400),
        sets_pow in 0u32..=3,
        ways_pow in 0u32..=3,
        dirt in proptest::collection::vec(0u8..2, 400),
    ) {
        let sets = 1u64 << sets_pow;
        let ways = 1u64 << ways_pow;
        let mut cache = Cache::new(CacheGeometry::new(sets, ways, 64).unwrap());
        let mut refsets: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        for (i, &pline) in accesses.iter().enumerate() {
            let set = &mut refsets[(pline % sets) as usize];
            let ref_hit = set.iter().position(|&p| p == pline);
            let (hit, evicted) = cache.probe_or_fill(pline, dirt[i] == 1);
            prop_assert_eq!(hit, ref_hit.is_some());
            match ref_hit {
                Some(pos) => {
                    set.remove(pos);
                    prop_assert_eq!(evicted, None, "a hit must not evict");
                }
                None => {
                    let victim =
                        if set.len() == ways as usize { Some(set.remove(0)) } else { None };
                    prop_assert_eq!(evicted.map(|e| e.pline), victim);
                }
            }
            set.push(pline); // most recently used
        }
        let mut resident: Vec<u64> = cache.iter_resident().collect();
        resident.sort_unstable();
        let mut expected: Vec<u64> = refsets.into_iter().flatten().collect();
        expected.sort_unstable();
        prop_assert_eq!(resident, expected);
    }

    /// The TLB is the same per-set LRU structure over VPNs: hits and
    /// eviction victims match the reference, reach never exceeds
    /// `sets × ways` entries, the just-touched translation is always
    /// resident, and a flush retires everything.
    #[test]
    fn tlb_matches_lru_reference_within_reach(
        accesses in proptest::collection::vec(0u64..64, 1..300),
        sets_pow in 0u32..=2,
        ways_pow in 0u32..=2,
        walk in 0u64..100,
    ) {
        let sets = 1u64 << sets_pow;
        let ways = 1u64 << ways_pow;
        let config = TlbConfig { sets, ways, walk_cycles: walk };
        let mut tlb = Tlb::new(config);
        prop_assert_eq!(tlb.walk_cycles(), walk);
        let mut refsets: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        for &vpn in &accesses {
            let set = &mut refsets[(vpn % sets) as usize];
            let ref_hit = set.iter().position(|&v| v == vpn);
            let hit = tlb.probe(vpn);
            prop_assert_eq!(hit, ref_hit.is_some());
            match ref_hit {
                Some(pos) => {
                    set.remove(pos);
                }
                None => {
                    let victim =
                        if set.len() == ways as usize { Some(set.remove(0)) } else { None };
                    prop_assert_eq!(tlb.insert(vpn), victim);
                }
            }
            set.push(vpn);
            prop_assert!(tlb.contains(vpn));
            prop_assert!(tlb.resident_entries() <= config.entries(), "reach exceeded");
        }
        tlb.flush();
        prop_assert_eq!(tlb.resident_entries(), 0);
        for &vpn in &accesses {
            prop_assert!(!tlb.contains(vpn));
        }
    }

    /// RegionTable agrees with a brute-force byte→owners map.
    #[test]
    fn regions_match_bruteforce(
        regions in proptest::collection::vec((0u64..8, 0u64..200, 1u64..60), 1..25),
        queries in proptest::collection::vec(0u64..300, 1..40),
    ) {
        let mut table = RegionTable::new();
        let mut brute: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>> =
            Default::default();
        for &(tid, start, len) in &regions {
            table.register(ThreadId(tid), VAddr(start), len);
            for b in start..start + len {
                brute.entry(b).or_default().insert(tid);
            }
        }
        for &q in &queries {
            let got: Vec<u64> = table.owners_of(VAddr(q)).iter().map(|t| t.0).collect();
            let expected: Vec<u64> =
                brute.get(&q).map(|s| s.iter().copied().collect()).unwrap_or_default();
            prop_assert_eq!(got, expected, "owners at byte {}", q);
        }
        // State sizes agree too.
        for tid in 0..8u64 {
            let expected = brute.values().filter(|s| s.contains(&tid)).count() as u64;
            prop_assert_eq!(table.state_bytes(ThreadId(tid)), expected);
        }
    }

    /// Sharing coefficients are symmetric in the numerator:
    /// q_ab·|a| == q_ba·|b| (both equal |a ∩ b|).
    #[test]
    fn coefficient_consistency(
        regions in proptest::collection::vec((0u64..4, 0u64..100, 1u64..40), 2..16),
    ) {
        let mut table = RegionTable::new();
        for &(tid, start, len) in &regions {
            table.register(ThreadId(tid), VAddr(start), len);
        }
        for a in 0..4u64 {
            for b in 0..4u64 {
                if a == b { continue; }
                let (ta, tb) = (ThreadId(a), ThreadId(b));
                let lhs = table.coefficient(ta, tb) * table.state_bytes(ta) as f64;
                let rhs = table.coefficient(tb, ta) * table.state_bytes(tb) as f64;
                prop_assert!((lhs - rhs).abs() < 1e-6);
                prop_assert_eq!(lhs.round() as u64, table.shared_bytes(ta, tb));
            }
        }
    }

    /// The slot-indexed heap pops in exactly sorted order after any mix
    /// of pushes, updates, and removals.
    #[test]
    fn heap_matches_sorted_reference(
        ops in proptest::collection::vec((0u8..4, 0u64..24, 0u32..1000), 1..250)
    ) {
        let mut slots = ThreadSlots::new();
        let handles: Vec<_> = (0..24).map(|tid| slots.bind(ThreadId(tid))).collect();
        let mut heap = PrioHeap::new();
        let mut reference: std::collections::BTreeMap<u64, f64> = Default::default();
        for &(op, tid, prio) in &ops {
            let t = ThreadId(tid);
            let slot = handles[tid as usize];
            let p = prio as f64;
            match op {
                0 | 1 => {
                    heap.push(t, slot, p);
                    reference.insert(tid, p);
                }
                2 => {
                    let got = heap.remove(slot);
                    let expected = reference.remove(&tid);
                    prop_assert_eq!(got, expected);
                }
                _ => {
                    let got = heap.pop_max().map(|(t2, _, p2)| (t2, p2));
                    let expected = reference
                        .iter()
                        .map(|(&t2, &p2)| (p2, t2))
                        .max_by(|a, b| {
                            a.0.partial_cmp(&b.0).unwrap().then(b.1.cmp(&a.1))
                        })
                        .map(|(p2, t2)| (ThreadId(t2), p2));
                    prop_assert_eq!(got, expected);
                    if let Some((t2, _)) = got {
                        reference.remove(&t2.0);
                    }
                }
            }
            prop_assert!(heap.check_invariants());
            prop_assert_eq!(heap.len(), reference.len());
        }
    }
}
