//! Property tests of slot recycling: a thread spawned into a recycled
//! dense slot must never inherit the previous occupant's state — not the
//! sanitizer's EWMAs or confidence, not the machine's per-thread counter
//! deltas or cache-line ownership, and not sharing-graph edges. Each
//! property drives random spawn/exit sequences against one slot-indexed
//! consumer and asserts the fresh-on-rebind invariant.

use proptest::prelude::*;
use thread_locality::core::{
    CounterSanitizer, SanitizerConfig, SharingGraph, SlotId, ThreadId, ThreadSlots,
};
use thread_locality::sim::{AccessKind, CacheGeometry, Machine, MachineConfig, TlbConfig, VAddr};
use thread_locality::threads::{
    BatchCtx, ChaosConfig, Control, Engine, EngineConfig, MutexId, Program, SchedPolicy,
};

/// One step of a random lifecycle schedule over a small tid universe.
/// `op == 1` binds (idempotent), `op == 0` releases.
fn ops() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..2, 0u64..10), 1..200)
}

proptest! {
    /// The registry itself: recycled indices always carry a fresh
    /// generation, live lookups are exact, and a released handle is
    /// dead even though its index lives on under a new tenant.
    #[test]
    fn registry_never_aliases(ops in ops()) {
        let mut slots = ThreadSlots::new();
        let mut live: std::collections::BTreeMap<u64, SlotId> = Default::default();
        let mut dead: Vec<SlotId> = Vec::new();
        for &(op, t) in &ops {
            if op == 1 {
                let s = slots.bind(ThreadId(t));
                if let Some(&prev) = live.get(&t) {
                    prop_assert_eq!(s, prev, "re-bind of a live tid must be idempotent");
                } else {
                    for &old in &dead {
                        if old.index() == s.index() {
                            prop_assert!(
                                old.generation() != s.generation(),
                                "recycled index {} reissued with a stale generation",
                                s.index()
                            );
                        }
                    }
                    live.insert(t, s);
                }
            } else if let Some(s) = live.remove(&t) {
                prop_assert_eq!(slots.release(ThreadId(t)), Some(s));
                dead.push(s);
            } else {
                prop_assert_eq!(slots.release(ThreadId(t)), None);
            }
            prop_assert_eq!(slots.live(), live.len());
            for (&t2, &s2) in &live {
                prop_assert_eq!(slots.lookup(ThreadId(t2)), Some(s2));
                prop_assert_eq!(slots.tid_of(s2), Some(ThreadId(t2)));
                prop_assert!(slots.is_live(s2));
            }
            for &s2 in &dead {
                prop_assert!(!slots.is_live(s2), "released handle still resolves");
                prop_assert_eq!(slots.tid_of(s2), None);
            }
        }
    }

    /// Sanitizer: after a thread with established (low-miss) history
    /// exits, a successor in its recycled slot starts at warmup — its
    /// first interval is taken verbatim, never clamped against the dead
    /// thread's EWMA, and its confidence starts back at 1.
    #[test]
    fn sanitizer_state_dies_with_the_thread(
        ops in ops(),
        probe_misses in 500u64..50_000,
    ) {
        let mut san = CounterSanitizer::new(SanitizerConfig::default());
        let mut live: std::collections::BTreeSet<u64> = Default::default();
        for &(op, t) in &ops {
            if op == 1 && live.insert(t) {
                // Establish history: enough clean tiny-miss intervals to
                // pass warmup, plus a trap to depress confidence.
                for _ in 0..8 {
                    let out = san.sanitize(ThreadId(t), 100, 99, 1);
                    prop_assert!(!out.corrected);
                }
                san.note_trap(ThreadId(t));
                prop_assert!(san.confidence(ThreadId(t)) < 1.0);
            } else if op == 0 && live.remove(&t) {
                san.forget(ThreadId(t));
                // A successor reusing the slot (same tid is the sharpest
                // case) sees fresh state: full confidence, and a first
                // interval far above the dead EWMA passes uncorrected
                // where inherited history would have clamped it.
                prop_assert_eq!(san.confidence(ThreadId(t)), 1.0);
                let out = san.sanitize(ThreadId(t), probe_misses, 0, probe_misses);
                prop_assert!(!out.corrected, "recycled slot inherited outlier history");
                prop_assert_eq!(out.misses, probe_misses);
                san.forget(ThreadId(t));
            }
        }
    }

    /// Machine: counter deltas and cache-line ownership are buried with
    /// `retire_thread`; a successor in the recycled slot owns nothing
    /// and counts from zero, even while the dead thread's lines are
    /// still resident in the E-cache.
    #[test]
    fn machine_ownership_dies_with_the_thread(
        lifecycles in proptest::collection::vec((1u64..64, 1u64..32), 1..12),
    ) {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        let mut next_tid = 1u64;
        for &(lines, rounds) in &lifecycles {
            let t = ThreadId(next_tid);
            next_tid += 1;
            let region = m.alloc(lines * 64, 64);
            m.register_region(t, region, lines * 64);
            m.set_running(0, Some(t));
            for _ in 0..rounds {
                for l in 0..lines {
                    m.access(0, region.offset(l * 64), AccessKind::Read);
                }
            }
            prop_assert_eq!(m.thread_stats(t).accesses, lines * rounds);
            prop_assert!(m.l2_footprint_lines(0, t) > 0);
            m.set_running(0, None);
            m.retire_thread(t);
            // Retired threads keep reporting from cold storage...
            prop_assert_eq!(m.thread_stats(t).accesses, lines * rounds);
            // ...but the successor that recycles the slot starts clean.
            let u = ThreadId(next_tid);
            next_tid += 1;
            let fresh = m.alloc(64, 64);
            m.register_region(u, fresh, 64);
            prop_assert_eq!(m.thread_stats(u).accesses, 0);
            prop_assert_eq!(
                m.l2_footprint_lines(0, u), 0,
                "successor inherited resident lines it never touched"
            );
        }
    }

    /// Sharing graph: `remove_thread` severs both directions; edges never
    /// resurrect when the tid (or its recycled slot) reappears, in both
    /// the overlay and the compacted CSR read path.
    #[test]
    fn graph_edges_die_with_the_thread(
        seq in proptest::collection::vec((0u64..6, 0u64..6), 1..60),
    ) {
        let mut g = SharingGraph::new();
        let mut model: std::collections::BTreeSet<(u64, u64)> = Default::default();
        for (i, &(a, b)) in seq.iter().enumerate() {
            if a == b {
                continue;
            }
            if i % 3 == 2 {
                g.remove_thread(ThreadId(a));
                model.retain(|&(s, d)| s != a && d != a);
            } else {
                g.set(ThreadId(a), ThreadId(b), 0.5).unwrap();
                model.insert((a, b));
            }
            if i % 2 == 0 {
                g.compact();
            }
            prop_assert_eq!(g.edge_count(), model.len());
            for t in 0u64..6 {
                let outs: std::collections::BTreeSet<u64> =
                    g.dependents_of(ThreadId(t)).map(|(d, _)| d.0).collect();
                let want: std::collections::BTreeSet<u64> =
                    model.iter().filter(|&&(s, _)| s == t).map(|&(_, d)| d).collect();
                prop_assert_eq!(outs, want, "dependents of t{} diverged", t);
            }
        }
    }
}

/// Lock a shared mutex, touch a private buffer, unlock, yield — the
/// workload for the engine-level abort properties. Because work happens
/// while the lock is held, chaos kills routinely orphan the mutex.
struct Locker {
    m: MutexId,
    buf: Option<VAddr>,
    rounds: u32,
    phase: u8,
}

impl Program for Locker {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        match self.phase {
            0 => {
                self.phase = 1;
                Control::Lock(self.m)
            }
            1 => {
                let buf = *self.buf.get_or_insert_with(|| ctx.alloc(4096, 64));
                ctx.register_region(buf, 4096);
                ctx.read_range(buf, 4096, 64);
                self.phase = 2;
                Control::Unlock(self.m)
            }
            _ => {
                self.rounds -= 1;
                if self.rounds == 0 {
                    Control::Exit
                } else {
                    self.phase = 0;
                    Control::Yield
                }
            }
        }
    }

    fn name(&self) -> &str {
        "locker"
    }
}

const SPAWNED: u64 = 8;

proptest! {
    /// Engine-level teardown: whatever mix of running aborts, idle kills,
    /// and spawn failures a random chaos config injects, the run
    /// completes, every spawned thread is accounted for, and aborted
    /// threads leave no sharing-graph edge and no owner-directory
    /// footprint behind — the same fresh-slot invariant the component
    /// properties above check, driven through the real abort path.
    #[test]
    fn aborted_threads_leave_no_trace(
        seed in 0u64..u64::MAX,
        abort_rate in 512u32..8192,
        idle_rate in 0u32..2048,
        spawn_rate in 0u32..8192,
    ) {
        let chaos = ChaosConfig {
            seed,
            abort_running_per_64k: abort_rate,
            abort_idle_per_64k: idle_rate,
            spawn_fail_per_64k: spawn_rate,
            ..ChaosConfig::default()
        };
        let config = EngineConfig { chaos: Some(chaos), ..EngineConfig::default() };
        let mut e = Engine::new(
            MachineConfig::enterprise5000(2),
            SchedPolicy::Lff,
            config,
        ).unwrap();
        let m = e.sync_tables_mut().create_mutex();
        let tids: Vec<ThreadId> = (0..SPAWNED)
            .map(|_| e.spawn(Box::new(Locker { m, buf: None, rounds: 6, phase: 0 })))
            .collect();
        // Annotate a sharing chain so the graph has edges to tear down.
        for pair in tids.windows(2) {
            // Stillborn threads are already gone; annotating them errors.
            let _ = e.annotate(pair[0], pair[1], 0.5);
        }
        let report = e.run().expect("chaos run must complete without deadlock or panic");
        prop_assert_eq!(
            report.threads_completed + report.threads_aborted,
            SPAWNED,
            "every spawned thread must retire as completed or aborted"
        );
        prop_assert_eq!(e.graph().edge_count(), 0, "dead threads left sharing-graph edges");
        for &t in &tids {
            prop_assert_eq!(e.graph().dependents_of(t).count(), 0);
            for cpu in 0..2 {
                prop_assert_eq!(
                    e.machine().l2_footprint_lines(cpu, t), 0,
                    "retired thread still owns cache lines in the directory"
                );
            }
        }
    }

    /// Mid-lock-hold deaths: with kills restricted to mutex holders,
    /// every fault orphans a held lock. The run must still complete (no
    /// deadlock on the corpse's mutex), the lock must be poisoned, and
    /// the fault budget must be spent exactly — the reclamation handoff
    /// keeps creating new holders to kill.
    #[test]
    fn lock_holder_deaths_never_deadlock(seed in 0u64..u64::MAX, max_faults in 1u32..4) {
        let chaos = ChaosConfig {
            seed,
            abort_running_per_64k: 65536,
            only_lock_holders: true,
            max_faults,
            ..ChaosConfig::default()
        };
        let config = EngineConfig { chaos: Some(chaos), ..EngineConfig::default() };
        let mut e = Engine::new(
            MachineConfig::enterprise5000(2),
            SchedPolicy::Crt,
            config,
        ).unwrap();
        let m = e.sync_tables_mut().create_mutex();
        for _ in 0..SPAWNED {
            e.spawn(Box::new(Locker { m, buf: None, rounds: 4, phase: 0 }));
        }
        let report = e.run().expect("orphaned locks must be reclaimed, not deadlock");
        prop_assert_eq!(u64::from(max_faults), report.threads_aborted);
        prop_assert_eq!(report.threads_completed, SPAWNED - u64::from(max_faults));
        prop_assert!(e.sync_tables().is_poisoned(m), "owner death must poison the mutex");
        for cpu in 0..2 {
            prop_assert_eq!(e.machine().l2_footprint_lines(cpu, ThreadId(1)), 0);
        }
    }

    /// TLB accounting under slot recycling and chaos aborts: with a tiny
    /// TLB, a charged page-table walk, and random thread kills, every
    /// processor's books must still balance — `misses × walk_cycles`
    /// equals the walk-cycle counter, reach never exceeds the configured
    /// entries, and retired threads leave no directory footprint. Thread
    /// death must never corrupt or leak translation state.
    #[test]
    fn tlb_accounting_survives_chaos_aborts(
        seed in 0u64..u64::MAX,
        abort_rate in 512u32..8192,
        walk in 1u64..64,
        tlb_ways_pow in 0u32..=2,
    ) {
        let chaos = ChaosConfig {
            seed,
            abort_running_per_64k: abort_rate,
            ..ChaosConfig::default()
        };
        let tlb = TlbConfig { sets: 2, ways: 1 << tlb_ways_pow, walk_cycles: walk };
        let config = EngineConfig {
            chaos: Some(chaos),
            l2_geometry: Some(CacheGeometry { sets: 256, ways: 4, line: 64 }),
            page_bytes: Some(4096),
            tlb: Some(tlb),
            ..EngineConfig::default()
        };
        let mut e = Engine::new(
            MachineConfig::enterprise5000(2),
            SchedPolicy::Lff,
            config,
        ).unwrap();
        let m = e.sync_tables_mut().create_mutex();
        let tids: Vec<ThreadId> = (0..SPAWNED)
            .map(|_| e.spawn(Box::new(Locker { m, buf: None, rounds: 6, phase: 0 })))
            .collect();
        let report = e.run().expect("chaos run with a tiny TLB must complete");
        prop_assert_eq!(report.threads_completed + report.threads_aborted, SPAWNED);
        let mut translated = 0u64;
        for cpu in 0..2 {
            let stats = e.machine().cpu_stats(cpu);
            prop_assert_eq!(
                stats.tlb_misses * walk, stats.tlb_walk_cycles,
                "walk cycles must be misses × walk latency on cpu {}", cpu
            );
            translated += stats.tlb_hits + stats.tlb_misses;
        }
        prop_assert!(translated > 0, "the workload must exercise translation");
        for &t in &tids {
            for cpu in 0..2 {
                prop_assert_eq!(e.machine().l2_footprint_lines(cpu, t), 0);
            }
        }
    }
}
