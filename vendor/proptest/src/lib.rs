//! A minimal, dependency-free, deterministic drop-in for the subset of
//! the `proptest` 1.x API used by this workspace's property tests.
//!
//! The build environment is air-gapped, so the real `proptest` crate
//! cannot be resolved from crates.io. This stub keeps the same test
//! source compiling and meaningful:
//!
//! * the [`proptest!`] macro expands each property into a `#[test]` that
//!   runs `PROPTEST_CASES` (default 64) generated cases;
//! * strategies are integer/float ranges, tuples of strategies, and
//!   [`collection::vec`];
//! * [`prop_assert!`]/[`prop_assert_eq!`] report the failing case.
//!
//! There is **no shrinking**: a failing case is reported as generated.
//! Case generation is fully deterministic (seeded from the test's module
//! path), so failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01B3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases each property runs (`PROPTEST_CASES` env override).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// `proptest`'s `prop_map`: applies `f` to every generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: std::fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value (`proptest::prelude::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: std::fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among strategies sharing a value type; built by
/// [`prop_oneof!`]. Arms are type-erased so heterogeneous strategy types
/// can mix, exactly like `proptest`'s `Union`.
pub struct Union<T> {
    arms: Vec<(u32, ErasedStrategy<T>)>,
}

/// A type-erased strategy arm.
type ErasedStrategy<T> = Box<dyn Fn(&mut TestRng) -> T>;

impl<T> Union<T> {
    /// An empty union; generation panics until an arm is added.
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds a weighted arm.
    pub fn arm<S>(mut self, weight: u32, strat: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        assert!(weight > 0, "prop_oneof arm weight must be positive");
        self.arms.push((weight, Box::new(move |rng| strat.generate(rng))));
        self
    }
}

impl<T> Default for Union<T> {
    fn default() -> Self {
        Union::new()
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof with no arms");
        let mut pick = rng.next_u64() % total;
        for (w, f) in &self.arms {
            if pick < *w as u64 {
                return f(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

/// `proptest`'s `prop_oneof!`: chooses among strategies, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new()$(.arm(($weight) as u32, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new()$(.arm(1u32, $strat))+
    };
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}
impl_strategy_float!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors with lengths in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy, TestRng, Union,
    };
}

/// Declares property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    // NB: `#[test]` is matched by the meta repetition (a literal
    // `#[test]` after `$(#[$meta:meta])*` would be ambiguous) and is
    // re-emitted with the other attributes.
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                for case in 0..cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Rendered up front: the body may consume the inputs.
                    let rendered_inputs =
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ");
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "property {} failed at case {case}/{cases}: {msg}\n  inputs: {rendered_inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )+
    };
}

/// `assert!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {:?} != {:?}", l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                ::std::format!("{}: {:?} != {:?}", ::std::format!($($fmt)+), l, r),
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Generated values respect their strategy ranges.
        #[test]
        fn ranges_hold(x in 3u64..10, y in 0usize..=4, f in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..=0.75).contains(&f), "f out of range: {f}");
        }

        /// Tuple and vec strategies compose.
        #[test]
        fn composites_hold(
            pairs in crate::collection::vec((0u8..4, 10u32..1000), 1..25)
        ) {
            prop_assert!((1..25).contains(&pairs.len()));
            for (a, b) in pairs {
                prop_assert!(a < 4);
                prop_assert_eq!((10..1000).contains(&b), true, "b = {}", b);
            }
        }
    }

    proptest! {
        /// `Just`, `prop_map`, and `prop_oneof!` compose into enums.
        #[test]
        fn combinators_hold(
            vals in crate::collection::vec(
                prop_oneof![
                    3 => (0u8..4).prop_map(|x| (x, false)),
                    1 => Just((9u8, true)),
                ],
                1..20,
            )
        ) {
            for (x, tagged) in vals {
                if tagged {
                    prop_assert_eq!(x, 9);
                } else {
                    prop_assert!(x < 4);
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn cases_env_default() {
        assert!(crate::cases() >= 1);
    }
}
