//! A minimal, dependency-free, deterministic drop-in for the subset of
//! the `rand` 0.8 API used by this workspace.
//!
//! The build environment is air-gapped, so the real `rand` crate cannot
//! be resolved from crates.io. The workloads only need seeded,
//! reproducible pseudo-random streams — statistical quality beyond
//! "uncorrelated enough for synthetic workloads" is irrelevant — so this
//! stub implements [`rngs::StdRng`] over SplitMix64 and the few trait
//! methods the workspace calls (`gen`, `gen_range`, `gen_bool`,
//! `seed_from_u64`).
//!
//! Note the streams differ from the real `rand::StdRng` (ChaCha12): any
//! recorded results keyed to specific seeds are relative to this stub.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core of an RNG: a source of 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `u64` convenience form is provided).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * <$t>::sample_standard(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * <$t>::sample_standard(rng)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing sampling interface, blanket-implemented for all RNGs.
pub trait Rng: RngCore {
    /// A uniform value over `T`'s whole domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64 (deterministic, seedable,
    /// passes the smoke-level uniformity the synthetic workloads need).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = r.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&f));
            let g: f64 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }
}
